"""Power-failure injection and non-volatile state capture.

A crash is injected at a chosen event index: the :class:`CrashInjector`
wraps the :class:`~repro.arch.system.CapriSystem` observer, delegates
events, and raises :class:`PowerFailure` when the target event is reached
— *before* the persistence engine processes it, modelling power dying
mid-operation.

What survives the failure (the persistent domain of Sections 5.2/6.1):

* the NVM durable image (including everything in the WPQ),
* both proxy buffers' contents — front-end, in-flight, and back-end
  entries, with their undo/redo data and valid bits,
* the staged register-checkpoint values attached to boundary entries.

Volatile state — register files, L1/L2, the DRAM cache, and the
*unattached* current-region checkpoint staging — is discarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.arch.nvm import WpqRecord
from repro.arch.proxy import ProxyEntry
from repro.arch.system import CapriSystem, build_system
from repro.ir.module import Module
from repro.isa.machine import Machine
from repro.isa.trace import Observer


class PowerFailure(Exception):
    """Raised by the injector at the planned crash point."""

    def __init__(self, state: "CrashState") -> None:
        super().__init__("injected power failure")
        self.state = state


@dataclass
class CrashPlan:
    """When to crash: after ``at_event`` observer events have completed."""

    at_event: int

    def __post_init__(self) -> None:
        if self.at_event < 0:
            raise ValueError("at_event must be >= 0")


@dataclass
class CrashState:
    """Snapshot of the persistent domain at the moment of power failure."""

    nvm_image: Dict[int, int]
    #: per-core surviving proxy entries, oldest first (back-end + front-end).
    core_entries: List[List[ProxyEntry]]
    num_cores: int
    #: durable per-core PC checkpoints: core -> (continuation, region_id).
    pc_checkpoints: Dict[int, tuple] = field(default_factory=dict)
    #: surviving write-pending-queue journal, oldest first (the WPQ is in
    #: the persistent domain — recovery replays it to heal a partially
    #: drained array; see repro.fault.models).
    wpq: List[WpqRecord] = field(default_factory=list)
    #: per-slot integrity words of the register-checkpoint array.
    ckpt_shadow: Dict[int, int] = field(default_factory=dict)

    def clone(self) -> "CrashState":
        """Independent deep copy — fault models mutate clones, never the
        captured snapshot, so one capture can seed many injections."""
        return CrashState(
            nvm_image=dict(self.nvm_image),
            core_entries=[
                [e.clone() for e in entries] for entries in self.core_entries
            ],
            num_cores=self.num_cores,
            pc_checkpoints=dict(self.pc_checkpoints),
            wpq=list(self.wpq),
            ckpt_shadow=dict(self.ckpt_shadow),
        )


def capture_crash_state(system: CapriSystem) -> CrashState:
    """Snapshot the persistent domain of a (possibly mid-run) system.

    Every mutable field is copied — the snapshot must never alias live
    pipeline state, or post-capture execution (and fault models mutating
    the snapshot) would corrupt each other.  :meth:`ProxyEntry.clone`
    copies all mutable containers per slot, not just ``ckpts``.
    """
    if system.persist is None:
        raise ValueError("cannot capture crash state of a volatile system")
    core_entries: List[List[ProxyEntry]] = []
    for pipe in system.persist.pipelines:
        core_entries.append([e.clone() for e in pipe.entries_in_order()])
    return CrashState(
        nvm_image=dict(system.nvm.image),
        core_entries=core_entries,
        num_cores=len(system.persist.pipelines),
        pc_checkpoints=dict(system.nvm.pc_checkpoints),
        wpq=list(system.nvm.wpq),
        ckpt_shadow=dict(system.nvm.ckpt_shadow),
    )


class CrashInjector(Observer):
    """Observer wrapper that fails power after N delegated events.

    ``target`` is the observer that receives delegated events; it
    defaults to ``system`` but may be a :class:`~repro.isa.trace.
    TeeObserver` fanning out to the persistency checker *and* the
    system.  The crash check runs before delegation, so at the crash
    point *no* downstream observer — system or checker — sees the event:
    the checker's shadow model and the captured hardware state stay in
    lock-step.

    The same injector interrupts *recovery*: pass ``system=None`` and a
    ``capture`` callable returning the persistent domain at the moment
    of failure (for :func:`repro.arch.recovery.run_recovery`, the live
    :class:`CrashState`'s ``clone`` method — recovery steps mutate the
    domain in place, and the crash fires before the fatal step applies).
    """

    def __init__(
        self,
        system: Optional[CapriSystem],
        plan: CrashPlan,
        target: Optional[Observer] = None,
        capture=None,
    ) -> None:
        if system is None and capture is None:
            raise ValueError("CrashInjector needs a system or a capture callable")
        self.system = system
        if target is not None:
            self.target = target
        elif system is not None:
            self.target = system
        else:
            self.target = Observer()  # recovery steps: no downstream consumer
        self.plan = plan
        self.capture = (
            capture
            if capture is not None
            else lambda: capture_crash_state(system)
        )
        self.events_seen = 0
        self.fired = False

    def _tick(self) -> None:
        if not self.fired and self.events_seen >= self.plan.at_event:
            self.fired = True
            raise PowerFailure(self.capture())
        self.events_seen += 1

    # Delegation: the crash check runs before the target sees the event.

    def on_retire(self, core, kind):
        self._tick()
        self.target.on_retire(core, kind)

    def on_load(self, core, addr):
        self._tick()
        self.target.on_load(core, addr)

    def on_store(self, core, addr, value, old):
        self._tick()
        self.target.on_store(core, addr, value, old)

    def on_ckpt(self, core, reg, value, addr):
        self._tick()
        self.target.on_ckpt(core, reg, value, addr)

    def on_boundary(self, core, region_id, continuation):
        self._tick()
        self.target.on_boundary(core, region_id, continuation)

    def on_fence(self, core):
        self._tick()
        self.target.on_fence(core)

    def on_atomic(self, core, addr, value, old):
        self._tick()
        self.target.on_atomic(core, addr, value, old)

    def on_io(self, core, port, value):
        self._tick()
        self.target.on_io(core, port, value)

    def on_halt(self, core):
        self._tick()
        self.target.on_halt(core)


def run_until_crash(
    module: Module,
    spawns: Sequence[Tuple[str, Sequence[int]]],
    plan: CrashPlan,
    params=None,
    threshold: int = 256,
    quantum: int = 32,
    max_steps: int = 50_000_000,
) -> Optional[CrashState]:
    """Run a workload with a crash plan.

    Returns the captured :class:`CrashState`, or ``None`` if the program
    finished before the crash point (the plan's event index was past the
    end of execution).
    """
    state, _machine = run_until_crash_with_machine(
        module,
        spawns,
        plan,
        params=params,
        threshold=threshold,
        quantum=quantum,
        max_steps=max_steps,
    )
    return state


def run_until_crash_with_machine(
    module: Module,
    spawns: Sequence[Tuple[str, Sequence[int]]],
    plan: CrashPlan,
    params=None,
    threshold: int = 256,
    quantum: int = 32,
    max_steps: int = 50_000_000,
) -> Tuple[Optional[CrashState], Machine]:
    """Like :func:`run_until_crash`, but also returns the (interrupted or
    finished) machine — campaigns need its pre-crash I/O log, which is an
    external effect the crash cannot undo."""
    machine, system = build_system(
        module, spawns, params=params, threshold=threshold, quantum=quantum
    )
    state = run_built_until_crash(machine, system, plan, max_steps=max_steps)
    return state, machine


def run_built_until_crash(
    machine: Machine,
    system: CapriSystem,
    plan: CrashPlan,
    max_steps: int = 50_000_000,
    extra_observer: Optional[Observer] = None,
) -> Optional[CrashState]:
    """Drive an already-built (machine, system) pair to the crash point.

    ``extra_observer`` (e.g. the persistency checker) is teed *before*
    the system, but still behind the injector — at the crash point
    neither it nor the system sees the fatal event.  Returns the
    captured state, or ``None`` if the program finished first.
    """
    from repro.isa.trace import TeeObserver

    target: Observer = system
    if extra_observer is not None:
        target = TeeObserver(extra_observer, system)
    injector = CrashInjector(system, plan, target=target)
    try:
        machine.run(injector, max_steps=max_steps)
    except PowerFailure as pf:
        return pf.state
    return None
