"""The NVM main memory: durable word image plus a bandwidth-limited write port.

The *image* is the authoritative durable state: what survives a power
failure.  Three producers write it:

* regular-path writebacks (DRAM-cache evictions),
* phase-2 proxy drains (redo data),
* staged register-checkpoint flushes at region commit.

Writes pass through the write-pending queue, which Table 1 places inside
the persistent domain — so a write is durable the moment it is issued,
while the port timestamp models sustained throughput (WPQ + bank-level
parallelism pipeline the 300 ns write latency).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict

from repro.arch.params import SimParams


@dataclass(frozen=True)
class WpqRecord:
    """One write-pending-queue slot: the journal of a recently issued write.

    ``prev`` is the word's value before the write (``None`` if the cell
    was never written), so a fault model can *revert* the array — modelling
    a drain the power cut mid-way — while the battery-backed queue record
    itself survives for recovery to replay.  ``checksum`` guards the
    record against torn queue writes.
    """

    addr: int
    value: int
    prev: int | None
    checksum: int

    @staticmethod
    def make(addr: int, value: int, prev: int | None) -> "WpqRecord":
        from repro.arch.proxy import word_checksum

        return WpqRecord(addr, value, prev, word_checksum(addr, value))

    @property
    def intact(self) -> bool:
        from repro.arch.proxy import word_checksum

        return self.checksum == word_checksum(self.addr, self.value)


class NVMain:
    """Durable word-granular memory image with a shared write port."""

    def __init__(self, params: SimParams, initial: Dict[int, int] | None = None) -> None:
        self.params = params
        self.image: Dict[int, int] = dict(initial or {})
        #: Durable per-core PC checkpoint (Section 3.1: boundary checkpoints
        #: contain "the current PC offset"): core -> (continuation,
        #: region_id), written when a region's boundary entry completes its
        #: second phase.  Until then the boundary entry itself (in the
        #: non-volatile proxy buffers) carries the continuation.
        self.pc_checkpoints: Dict[int, tuple] = {}
        #: The write-pending queue's journal: the last ``wpq_entries``
        #: issued writes, oldest first.  Table 1 puts the WPQ inside the
        #: persistent domain, so these records survive a power failure;
        #: recovery replays them to heal a partially-drained array
        #: (the ADR contract — see repro.fault.models).
        self.wpq: Deque[WpqRecord] = deque(maxlen=params.wpq_entries)
        #: Per-slot integrity words for the register-checkpoint array
        #: (the ECC a real part keeps alongside the cells); recovery
        #: verifies a slot's shadow before trusting its value.
        self.ckpt_shadow: Dict[int, int] = {}
        #: Next cycle at which the write port can issue.
        self.write_free_at = 0.0
        # -- counters -----------------------------------------------------
        self.writes_writeback = 0  # regular-path words written
        self.writes_redo = 0  # phase-2 redo words written
        self.writes_ckpt = 0  # checkpoint-array words written
        self.writes_skipped = 0  # redo entries skipped (valid bit unset)
        self.reads = 0

    # -- durable state ------------------------------------------------------

    def read_word(self, addr: int) -> int:
        self.reads += 1
        return self.image.get(addr, 0)

    def peek(self, addr: int) -> int:
        """Read without counting (for invariant checks)."""
        return self.image.get(addr, 0)

    # -- write port timing ------------------------------------------------------

    def issue_write(self, now: float) -> float:
        """Occupy one write-port slot at/after ``now``; return issue time."""
        t = max(now, self.write_free_at)
        self.write_free_at = t + self.params.nvm_write_interval_cycles
        return t

    # -- producers ----------------------------------------------------------------

    def _journal(self, addr: int, value: int) -> None:
        self.wpq.append(WpqRecord.make(addr, value, self.image.get(addr)))

    def writeback_words(self, now: float, words: Dict[int, int]) -> float:
        """Apply a regular-path writeback; returns last issue time."""
        t = now
        for addr, value in words.items():
            t = self.issue_write(now)
            self._journal(addr, value)
            self.image[addr] = value
            self.writes_writeback += 1
        return t

    def redo_write(self, now: float, addr: int, value: int) -> float:
        t = self.issue_write(now)
        self._journal(addr, value)
        self.image[addr] = value
        self.writes_redo += 1
        return t

    def ckpt_write(self, now: float, addr: int, value: int) -> float:
        from repro.arch.proxy import word_checksum

        t = self.issue_write(now)
        self._journal(addr, value)
        self.image[addr] = value
        self.ckpt_shadow[addr] = word_checksum(addr, value)
        self.writes_ckpt += 1
        return t

    @property
    def total_writes(self) -> int:
        return self.writes_writeback + self.writes_redo + self.writes_ckpt
