"""Crash recovery with undo+redo logging (paper Section 5.4).

The recovery protocol, per core, scans the surviving proxy entries oldest
first:

1. **Committed regions** — groups of data entries *followed by* a boundary
   entry completed their first phase; their redo data is copied to NVM in
   order, skipping entries whose redo valid-bit was unset by a regular-path
   writeback (Figure 7), and the boundary's staged register checkpoints
   are applied to the checkpoint array.
2. **The uncommitted tail** — data entries after the last boundary belong
   to the interrupted region, which never finished phase 1; their *undo*
   data is applied in reverse, rolling NVM back to the last committed
   region boundary.
3. **Register restore** — the interrupted core's register file is reloaded
   from the checkpoint array at the continuation's call depth; pruned
   checkpoints are rebuilt by executing the region's recovery blocks
   (Section 4.4.1).
4. **Resume** — execution restarts at the beginning of the interrupted
   region, with suspended caller frames restored from the continuation
   (our image of the WSP-persistent stack; see DESIGN.md).

A core with no committed boundary at all (crash before its first boundary
entry became durable) restarts cold from its spawn configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.crash import CrashState
from repro.ir.function import RecoveryBlock
from repro.ir.instructions import BinOp, Move, UnOp, eval_binop, eval_unop
from repro.ir.module import Module, ckpt_slot_addr
from repro.ir.values import Reg
from repro.isa.machine import Continuation, Machine


class RecoveryError(Exception):
    """Raised when the recovery protocol meets inconsistent durable state."""


@dataclass
class CoreResume:
    """Where one core resumes after recovery."""

    continuation: Continuation
    region_id: int
    registers: List[int]


@dataclass
class RecoveredState:
    """Outcome of the recovery protocol."""

    nvm_image: Dict[int, int]
    #: per-core resume points; ``None`` = restart cold from spawn.
    resumes: List[Optional[CoreResume]]
    #: statistics
    regions_redone: int = 0
    regions_rolled_back: int = 0
    redo_words: int = 0
    undo_words: int = 0
    recovery_blocks_run: int = 0


def _eval_recovery_block(rb: RecoveryBlock, regs: List[int]) -> None:
    """Execute a pure recovery slice over the restored register file."""
    for instr in rb.instrs:
        if isinstance(instr, BinOp):
            a = regs[instr.lhs.index] if isinstance(instr.lhs, Reg) else instr.lhs.value
            b = regs[instr.rhs.index] if isinstance(instr.rhs, Reg) else instr.rhs.value
            regs[instr.dst.index] = eval_binop(instr.op, a, b)
        elif isinstance(instr, UnOp):
            a = regs[instr.src.index] if isinstance(instr.src, Reg) else instr.src.value
            regs[instr.dst.index] = eval_unop(instr.op, a)
        elif isinstance(instr, Move):
            regs[instr.dst.index] = (
                regs[instr.src.index] if isinstance(instr.src, Reg) else instr.src.value
            )
        else:  # pragma: no cover - pruning emits only pure instructions
            raise RecoveryError(f"impure instruction in recovery block: {instr!r}")


def recover(state: CrashState, module: Module) -> RecoveredState:
    """Run the Section 5.4 protocol over a crash snapshot."""
    image = dict(state.nvm_image)
    resumes: List[Optional[CoreResume]] = []
    out = RecoveredState(nvm_image=image, resumes=resumes)

    for core in range(state.num_cores):
        entries = state.core_entries[core]
        # The resume point starts at the durable PC checkpoint (regions
        # whose boundary entry already completed phase 2); surviving
        # boundary entries in the buffers are newer and override it.
        last_continuation, last_region_id = state.pc_checkpoints.get(
            core, (None, None)
        )
        # Phase A: committed regions — redo in order, apply checkpoints.
        tail_start = 0
        for i, entry in enumerate(entries):
            if entry.is_boundary:
                for j in range(tail_start, i):
                    data = entries[j]
                    if data.redo_valid:
                        image[data.addr] = data.redo
                        out.redo_words += 1
                for slot_addr, value in entry.ckpts.items():
                    image[slot_addr] = value
                last_continuation = entry.continuation
                last_region_id = entry.region_id
                out.regions_redone += 1
                tail_start = i + 1
        # Phase B: the uncommitted tail — undo in reverse.
        tail = entries[tail_start:]
        if tail:
            for data in reversed(tail):
                image[data.addr] = data.undo
                out.undo_words += 1
            out.regions_rolled_back += 1

        # Phase C: register restore + recovery blocks.
        if last_continuation is None:
            resumes.append(None)  # cold restart from spawn
            continue
        cont: Continuation = last_continuation
        func = module.functions.get(cont.func_name)
        if func is None:
            raise RecoveryError(
                f"core {core}: continuation references unknown function "
                f"{cont.func_name!r}"
            )
        depth = cont.depth
        regs = [
            image.get(ckpt_slot_addr(core, r, depth), 0)
            for r in range(func.num_regs)
        ]
        for rb in func.recovery_blocks.get(last_region_id, []):
            _eval_recovery_block(rb, regs)
            out.recovery_blocks_run += 1
        resumes.append(
            CoreResume(
                continuation=cont,
                region_id=last_region_id,
                registers=regs,
            )
        )
    return out


def prepare_resumed_run(
    recovered: RecoveredState,
    module: Module,
    spawns: Sequence[Tuple[str, Sequence[int]]],
    params=None,
    threshold: int = 256,
    quantum: int = 32,
):
    """Build a (machine, system) pair continuing execution *under Capri*.

    Unlike :func:`resume_and_finish` (functional-only), the resumed run
    drives a fresh :class:`~repro.arch.system.CapriSystem` seeded with the
    recovered durable image — so a *second* power failure can be injected
    and recovered, modelling repeated outages (whole-system persistence
    must survive any number of them).
    """
    from repro.arch.params import SimParams
    from repro.arch.system import CapriSystem

    machine = _build_resumed_machine(recovered, module, spawns, quantum)
    system = CapriSystem(
        params or SimParams.scaled(),
        num_cores=max(1, len(spawns)),
        threshold=threshold,
    )
    system.machine = machine
    system.nvm.image.update(recovered.nvm_image)
    # The durable PC checkpoints survive the outage: re-seed them so an
    # immediate second crash still finds its resume points.
    for core, resume in enumerate(recovered.resumes):
        if resume is not None:
            system.nvm.pc_checkpoints[core] = (
                resume.continuation,
                resume.region_id,
            )
    return machine, system


def _build_resumed_machine(
    recovered: RecoveredState,
    module: Module,
    spawns: Sequence[Tuple[str, Sequence[int]]],
    quantum: int,
) -> Machine:
    machine = Machine(module, quantum=quantum)
    machine.memory = dict(recovered.nvm_image)
    for core, resume in enumerate(recovered.resumes):
        if resume is not None:
            machine.resume(core, resume.continuation, resume.registers)
        else:
            if core >= len(spawns):
                raise RecoveryError(
                    f"core {core}: no spawn configuration for cold restart"
                )
            func_name, args = spawns[core]
            func = module.functions[func_name]
            cold = Continuation(
                func_name=func_name,
                label=func.entry.label,
                index=0,
                callstack=(),
            )
            regs = list(args) + [0] * (func.num_regs - len(args))
            machine.resume(core, cold, regs)
    for core in range(len(recovered.resumes), len(spawns)):
        func_name, args = spawns[core]
        hart = machine.spawn(func_name, args)
        hart.started = True  # no spawn-time persistence events on replay
    return machine


def resume_and_finish(
    recovered: RecoveredState,
    module: Module,
    spawns: Sequence[Tuple[str, Sequence[int]]],
    quantum: int = 32,
    max_steps: int = 50_000_000,
    observer=None,
) -> Machine:
    """Restart execution from a recovered state and run to completion.

    Cores with a resume point continue at their interrupted region; cores
    without one restart from their spawn configuration.  Returns the
    finished machine (its memory is the post-recovery final state).
    """
    machine = _build_resumed_machine(recovered, module, spawns, quantum)
    machine.run(observer, max_steps=max_steps)
    return machine
