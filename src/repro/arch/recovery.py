"""Crash recovery with undo+redo logging (paper Section 5.4).

The recovery protocol, per core, scans the surviving proxy entries oldest
first:

1. **Committed regions** — groups of data entries *followed by* a boundary
   entry completed their first phase; their redo data is copied to NVM in
   order, skipping entries whose redo valid-bit was unset by a regular-path
   writeback (Figure 7), and the boundary's staged register checkpoints
   are applied to the checkpoint array.
2. **The uncommitted tail** — data entries after the last boundary belong
   to the interrupted region, which never finished phase 1; their *undo*
   data is applied in reverse, rolling NVM back to the last committed
   region boundary.
3. **Register restore** — the interrupted core's register file is reloaded
   from the checkpoint array at the continuation's call depth; pruned
   checkpoints are rebuilt by executing the region's recovery blocks
   (Section 4.4.1).
4. **Resume** — execution restarts at the beginning of the interrupted
   region, with suspended caller frames restored from the continuation
   (our image of the WSP-persistent stack; see DESIGN.md).

A core with no committed boundary at all (crash before its first boundary
entry became durable) restarts cold from its spawn configuration.

Fault tolerance (docs/INTERNALS.md §5)
--------------------------------------
The durable structures carry integrity metadata — per-entry checksums in
the proxy buffers, a journal of the write-pending queue, and per-slot
shadow words for the register-checkpoint array — so recovery *verifies*
before it trusts.  Two modes:

* ``strict=True`` (default): the first inconsistency raises a typed
  :class:`RecoveryError` — :class:`TornEntryError`,
  :class:`CheckpointMismatchError`, :class:`OrphanedBoundaryError`, or
  :class:`WpqCorruptionError` — fail-stop semantics.
* ``strict=False``: corruption is *quarantined*.  Torn entries are
  skipped (their addresses marked tainted), a torn boundary rolls the
  core back to its last intact boundary, and a core whose checkpoint
  slots or continuation cannot be trusted is fenced off entirely (not
  resumed).  The outcome is described by a structured
  :class:`RecoveryReport` — corruption is detected and contained, never
  silently mis-recovered.

Re-entrancy (docs/INTERNALS.md §5.6)
------------------------------------
Recovery itself runs on mains power and can lose it.  The protocol is
therefore executed as an *ordered sequence of durable steps* — WPQ
replay writes, per-entry redo applies, checkpoint-array restores, undo
rollbacks, register/continuation restores — over a live persistent
domain (:func:`run_recovery`), with one standard Observer callback per
step so a :class:`~repro.arch.crash.CrashInjector` can cut power
mid-recovery exactly as it does mid-execution.  The durable inputs
(proxy buffers, WPQ journal, PC checkpoints) are read-only until the
final *recovery-complete commit* step, and every step writes absolute
values derived from those inputs — so re-entering recovery over a
recovery-crashed domain replays the same step sequence and converges to
the bit-identical :class:`RecoveredState` of an uninterrupted recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.arch.crash import CrashState
from repro.arch.proxy import ProxyEntry, word_checksum
from repro.ir.function import RecoveryBlock
from repro.ir.instructions import BinOp, Move, UnOp, eval_binop, eval_unop
from repro.ir.module import Module, ckpt_slot_addr, is_ckpt_addr
from repro.ir.values import Reg
from repro.isa.machine import Continuation, Machine
from repro.isa.trace import Observer


class RecoveryError(Exception):
    """Raised when the recovery protocol meets inconsistent durable state."""


class TornEntryError(RecoveryError):
    """A proxy-buffer entry's checksum does not match its payload — a
    torn multi-word entry write or an in-buffer bit flip."""


class CheckpointMismatchError(RecoveryError):
    """A register-checkpoint slot's shadow integrity word disagrees with
    the stored value."""


class OrphanedBoundaryError(RecoveryError):
    """A boundary's continuation references a function the module does
    not contain — the resume point is unusable."""


class WpqCorruptionError(RecoveryError):
    """A write-pending-queue journal record failed its checksum."""


# Finding kinds (RecoveryFinding.kind values).
TORN_ENTRY = "torn-entry"
CHECKSUM_MISMATCH = "checksum-mismatch"
ORPHANED_BOUNDARY = "orphaned-boundary"
TORN_WPQ = "torn-wpq"
ROLLED_BACK_REGION = "rolled-back-region"


@dataclass
class RecoveryFinding:
    """One detected inconsistency."""

    kind: str
    core: int
    detail: str
    addr: Optional[int] = None


@dataclass
class RecoveryReport:
    """Structured outcome of a lenient (``strict=False``) recovery."""

    findings: List[RecoveryFinding] = field(default_factory=list)
    #: corrupt proxy entries skipped (redo/undo not applied).
    quarantined_entries: int = 0
    #: cores fenced off entirely (untrusted checkpoints/continuation).
    quarantined_cores: List[int] = field(default_factory=list)
    #: committed regions rolled back because they follow a torn boundary.
    rolled_back_committed: int = 0
    #: WPQ journal records replayed into the array.
    wpq_replayed: int = 0
    #: addresses whose durable value could not be restored with
    #: confidence (a corrupt entry's undo/redo was untrusted).
    tainted_addrs: Set[int] = field(default_factory=set)

    @property
    def clean(self) -> bool:
        return not self.findings

    def add(
        self, kind: str, core: int, detail: str, addr: Optional[int] = None
    ) -> None:
        self.findings.append(RecoveryFinding(kind, core, detail, addr))

    def summary(self) -> str:
        if self.clean:
            return "clean recovery (no findings)"
        kinds: Dict[str, int] = {}
        for f in self.findings:
            kinds[f.kind] = kinds.get(f.kind, 0) + 1
        parts = [f"{k}×{n}" for k, n in sorted(kinds.items())]
        return (
            f"{len(self.findings)} findings ({', '.join(parts)}); "
            f"{self.quarantined_entries} entries quarantined, "
            f"cores fenced: {self.quarantined_cores or 'none'}, "
            f"{len(self.tainted_addrs)} tainted addrs"
        )


@dataclass
class CoreResume:
    """Where one core resumes after recovery."""

    continuation: Continuation
    region_id: int
    registers: List[int]


@dataclass
class RecoveredState:
    """Outcome of the recovery protocol."""

    nvm_image: Dict[int, int]
    #: per-core resume points; ``None`` = restart cold from spawn
    #: (unless the core is listed in ``report.quarantined_cores``).
    resumes: List[Optional[CoreResume]]
    #: statistics
    regions_redone: int = 0
    regions_rolled_back: int = 0
    redo_words: int = 0
    undo_words: int = 0
    recovery_blocks_run: int = 0
    #: integrity outcome (always present; empty findings when clean).
    report: RecoveryReport = field(default_factory=RecoveryReport)
    #: checkpoint-array shadow words after recovery (re-seeded into the
    #: resumed system so a later crash still verifies).
    ckpt_shadow: Dict[int, int] = field(default_factory=dict)
    #: durable recovery steps executed (= observer events emitted).
    steps: int = 0
    #: True once the final recovery-complete commit step has applied.
    committed: bool = False


def _eval_recovery_block(rb: RecoveryBlock, regs: List[int]) -> None:
    """Execute a pure recovery slice over the restored register file."""
    for instr in rb.instrs:
        if isinstance(instr, BinOp):
            a = regs[instr.lhs.index] if isinstance(instr.lhs, Reg) else instr.lhs.value
            b = regs[instr.rhs.index] if isinstance(instr.rhs, Reg) else instr.rhs.value
            regs[instr.dst.index] = eval_binop(instr.op, a, b)
        elif isinstance(instr, UnOp):
            a = regs[instr.src.index] if isinstance(instr.src, Reg) else instr.src.value
            regs[instr.dst.index] = eval_unop(instr.op, a)
        elif isinstance(instr, Move):
            regs[instr.dst.index] = (
                regs[instr.src.index] if isinstance(instr.src, Reg) else instr.src.value
            )
        else:  # pragma: no cover - pruning emits only pure instructions
            raise RecoveryError(f"impure instruction in recovery block: {instr!r}")


def _first_torn_boundary(entries: List[ProxyEntry]) -> Optional[int]:
    for i, e in enumerate(entries):
        if e.is_boundary and not e.intact:
            return i
    return None


def recover(
    state: CrashState, module: Module, strict: bool = True, mutations=None
) -> RecoveredState:
    """Run the Section 5.4 protocol over a crash snapshot.

    With ``strict=True`` (the default) any integrity violation raises a
    typed :class:`RecoveryError`; with ``strict=False`` corruption is
    quarantined and described in ``RecoveredState.report``.

    ``mutations`` (a :class:`repro.arch.persistence.ProtocolMutations`)
    plants recovery-protocol bugs for checker-sensitivity tests
    (``recovery_skip_redo``, ``recovery_stale_pc``,
    ``recovery_early_clear``); leave ``None`` for the faithful protocol.

    This is the pure, snapshot-in/state-out view: it clones ``state``
    and drives :func:`run_recovery` over the clone with no observer, so
    the caller's snapshot is never mutated.  Use :func:`run_recovery`
    directly to model a recovery that can itself lose power.
    """
    return run_recovery(state.clone(), module, strict=strict, mutations=mutations)


def run_recovery(
    domain: CrashState,
    module: Module,
    strict: bool = True,
    mutations=None,
    observer: Optional[Observer] = None,
) -> RecoveredState:
    """Execute recovery as an ordered sequence of durable steps over the
    *live* persistent domain ``domain`` (mutated in place).

    Every durable step — WPQ replay write, redo apply, checkpoint-array
    restore, undo rollback, register/continuation restore, and the final
    recovery-complete commit — is announced through ``observer`` via the
    standard :class:`~repro.isa.trace.Observer` interface *before* its
    durable effect takes hold.  Wrapping the call in a
    :class:`~repro.arch.crash.CrashInjector` therefore interrupts
    recovery with the exact tick-before-effect semantics of an execution
    crash: a :class:`~repro.arch.crash.PowerFailure` at step *k* leaves
    steps ``0..k-1`` applied and *k* onwards not.

    The durable inputs (proxy buffers, WPQ journal, PC checkpoints) are
    read-only until the commit step, and every step writes an absolute
    value derived from them — never a read-modify-write of the image —
    so calling ``run_recovery`` again over a recovery-crashed ``domain``
    replays the same step sequence and converges to the bit-identical
    :class:`RecoveredState` of an uninterrupted recovery (the
    re-entrancy argument, docs/INTERNALS.md §5.6).  The commit step then
    clears the buffers and journal and rewrites the durable PC
    checkpoints to the post-recovery resume points.

    In strict mode an integrity violation raises mid-sequence, leaving
    ``domain`` partially recovered — but its durable inputs untouched,
    so a later (lenient) re-entry still sees the full evidence.
    """
    out = RecoveredState(
        nvm_image=domain.nvm_image,
        resumes=[],
        ckpt_shadow=domain.ckpt_shadow,
    )
    sink = observer if observer is not None else Observer()
    for emit, apply in _recovery_steps(domain, module, out, strict, mutations):
        emit(sink)  # a CrashInjector raises PowerFailure here
        apply()
        out.steps += 1
    return out


def _recovery_steps(
    domain: CrashState,
    module: Module,
    out: RecoveredState,
    strict: bool,
    mutations,
) -> Iterator[Tuple[Callable, Callable]]:
    """Yield recovery's ordered ``(emit, apply)`` durable-step pairs.

    ``emit(observer)`` announces the step; ``apply()`` performs its
    persistent-domain mutation.  Planning code between yields (buffer
    scans, integrity checks, report bookkeeping) runs only after every
    earlier step has applied — the driver applies each step before
    resuming the generator — so Phase C's image reads always see the
    completed Phase A/B writes.
    """
    skip_redo = mutations is not None and mutations.recovery_skip_redo
    stale_pc = mutations is not None and mutations.recovery_stale_pc
    early_clear = mutations is not None and getattr(
        mutations, "recovery_early_clear", False
    )
    image = domain.nvm_image
    shadow = domain.ckpt_shadow
    resumes = out.resumes
    report = out.report

    # -- WPQ replay: drain the surviving journal into the array --------
    # The WPQ sits inside the persistent domain (Table 1), so its
    # records survive the outage even if the array writes they describe
    # were cut mid-drain; replaying them in order is idempotent and
    # heals a partially drained array.
    for rec in list(domain.wpq):
        if not rec.intact:
            if strict:
                raise WpqCorruptionError(
                    f"WPQ record for {rec.addr:#x} failed its checksum"
                )
            report.add(
                TORN_WPQ,
                core=-1,
                detail=f"WPQ record for {rec.addr:#x} dropped",
                addr=rec.addr,
            )
            report.tainted_addrs.add(rec.addr)
            continue

        def emit(obs, rec=rec):
            obs.on_store(-1, rec.addr, rec.value, image.get(rec.addr, 0))

        def apply(rec=rec):
            if image.get(rec.addr) != rec.value:
                report.wpq_replayed += 1
            image[rec.addr] = rec.value
            if is_ckpt_addr(rec.addr):
                shadow[rec.addr] = word_checksum(rec.addr, rec.value)

        yield emit, apply

    entries_by_core = [list(domain.core_entries[c]) for c in range(domain.num_cores)]
    if early_clear:
        # The planted non-idempotence bug: durable buffers are cleared
        # HERE, before the redo/undo they hold has been applied, instead
        # of at the commit step.  A crash anywhere in the remainder of
        # recovery strands the re-entry without its inputs — exactly the
        # class of bug the multi-crash campaign exists to catch.
        domain.core_entries = [[] for _ in range(domain.num_cores)]
        domain.wpq = []

    for core in range(domain.num_cores):
        entries = entries_by_core[core]

        if strict:
            for e in entries:
                if not e.intact:
                    raise TornEntryError(
                        f"core {core}: torn {'boundary' if e.is_boundary else 'data'}"
                        f" entry (seq {e.region_seq}"
                        + ("" if e.is_boundary else f", addr {e.addr:#x}")
                        + ")"
                    )

        # A torn *boundary* makes its region's commit untrustworthy, and
        # entry ordering after it can no longer be anchored: cut the
        # timeline there and roll everything from the tear onwards back.
        cut = _first_torn_boundary(entries)
        truncated: List[ProxyEntry] = []
        if cut is not None:
            effective = entries[:cut]
            truncated = entries[cut:]
            torn_boundary = entries[cut]
            report.add(
                TORN_ENTRY,
                core,
                f"torn boundary entry (seq {torn_boundary.region_seq}); "
                "rolling back to last intact boundary",
            )
            report.quarantined_entries += 1
        else:
            effective = entries

        # The resume point starts at the durable PC checkpoint (regions
        # whose boundary entry already completed phase 2); surviving
        # boundary entries in the buffers are newer and override it.
        last_continuation, last_region_id = domain.pc_checkpoints.get(
            core, (None, None)
        )

        # Phase A: committed regions — redo in order, apply checkpoints.
        core_tainted = False
        tail_start = 0
        for i, entry in enumerate(effective):
            if not entry.is_boundary:
                continue
            for j in range(tail_start, i):
                data = effective[j]
                if not data.intact:
                    report.add(
                        TORN_ENTRY,
                        core,
                        f"torn data entry in committed region "
                        f"{entry.region_id} (addr {data.addr:#x}); "
                        "redo dropped",
                        addr=data.addr,
                    )
                    report.quarantined_entries += 1
                    report.tainted_addrs.add(data.addr)
                    core_tainted = True
                    continue
                if data.redo_valid and not skip_redo:

                    def emit(obs, core=core, data=data):
                        obs.on_store(
                            core, data.addr, data.redo, image.get(data.addr, 0)
                        )

                    def apply(data=data):
                        image[data.addr] = data.redo
                        out.redo_words += 1

                    yield emit, apply
            for slot_addr, value in entry.ckpts.items():

                def emit(obs, core=core, slot_addr=slot_addr, value=value):
                    obs.on_ckpt(core, -1, value, slot_addr)

                def apply(slot_addr=slot_addr, value=value):
                    image[slot_addr] = value
                    shadow[slot_addr] = word_checksum(slot_addr, value)

                yield emit, apply
            if not stale_pc:
                last_continuation = entry.continuation
                last_region_id = entry.region_id
            out.regions_redone += 1
            tail_start = i + 1

        # Phase B: the uncommitted tail — undo in reverse.  Entries past
        # a torn boundary (``truncated``) are rolled back too: committed
        # regions beyond the tear cannot be anchored to a trusted resume
        # point, so the core rewinds to its last intact boundary.
        tail = effective[tail_start:] + truncated
        rolled_any = False
        for data in reversed(tail):
            if data.is_boundary:
                if data.intact:
                    report.add(
                        ROLLED_BACK_REGION,
                        core,
                        f"committed region {data.region_id} rolled back "
                        "(follows a torn boundary)",
                    )
                    report.rolled_back_committed += 1
                continue
            if not data.intact:
                report.add(
                    TORN_ENTRY,
                    core,
                    f"torn data entry in interrupted region "
                    f"(addr {data.addr:#x}); undo untrusted",
                    addr=data.addr,
                )
                report.quarantined_entries += 1
                report.tainted_addrs.add(data.addr)
                core_tainted = True
                continue
            rolled_any = True

            def emit(obs, core=core, data=data):
                obs.on_store(core, data.addr, data.undo, image.get(data.addr, 0))

            def apply(data=data):
                image[data.addr] = data.undo
                out.undo_words += 1

            yield emit, apply
        if tail and rolled_any:
            out.regions_rolled_back += 1

        # Phase C: register restore + recovery blocks.
        if core_tainted:
            # A quarantined entry means some of this core's durable words
            # are indeterminate; resuming (or cold-restarting) over them
            # would silently propagate garbage.  Fence the core instead —
            # containment beats availability.
            report.quarantined_cores.append(core)
            resumes.append(None)
            continue
        if last_continuation is None:
            resumes.append(None)  # cold restart from spawn
            continue
        cont: Continuation = last_continuation
        func = module.functions.get(cont.func_name)
        if func is None:
            if strict:
                raise OrphanedBoundaryError(
                    f"core {core}: continuation references unknown function "
                    f"{cont.func_name!r}"
                )
            report.add(
                ORPHANED_BOUNDARY,
                core,
                f"continuation references unknown function {cont.func_name!r}; "
                "core fenced off",
            )
            report.quarantined_cores.append(core)
            resumes.append(None)
            continue
        depth = cont.depth
        regs: List[int] = []
        corrupt_slot: Optional[int] = None
        for r in range(func.num_regs):
            slot = ckpt_slot_addr(core, r, depth)
            value = image.get(slot, 0)
            expected = shadow.get(slot)
            if slot in image or expected is not None:
                if expected is None or expected != word_checksum(slot, value):
                    corrupt_slot = slot
                    if strict:
                        raise CheckpointMismatchError(
                            f"core {core}: checkpoint slot {slot:#x} "
                            f"(r{r}, depth {depth}) failed its shadow check"
                        )
                    report.add(
                        CHECKSUM_MISMATCH,
                        core,
                        f"checkpoint slot for r{r} at depth {depth} "
                        "failed its shadow check; core fenced off",
                        addr=slot,
                    )
                    break
            regs.append(value)
        if corrupt_slot is not None:
            # The register file cannot be trusted; resuming could silently
            # compute garbage.  Fence the core off and report it.
            report.quarantined_cores.append(core)
            report.tainted_addrs.add(corrupt_slot)
            resumes.append(None)
            continue

        # The register/continuation restore is one durable step: the
        # resume point becomes real (recovery blocks rebuild pruned
        # slots as part of it, Section 4.4.1).
        def emit(obs, core=core, cont=cont, rid=last_region_id):
            obs.on_boundary(core, rid, cont)

        def apply(cont=cont, rid=last_region_id, regs=regs, func=func):
            for rb in func.recovery_blocks.get(rid, []):
                _eval_recovery_block(rb, regs)
                out.recovery_blocks_run += 1
            resumes.append(
                CoreResume(continuation=cont, region_id=rid, registers=regs)
            )

        yield emit, apply

    # -- recovery-complete commit: the single atomicity point ----------
    # Only after every redo/undo/restore has applied do the proxy
    # buffers, the WPQ journal, and the stale PC checkpoints get
    # retired.  A crash at any earlier step leaves all durable inputs in
    # place; a crash *at* this step (emit fires, apply does not) too —
    # so re-entry always recovers from the original evidence.
    def emit(obs):
        obs.on_fence(-1)

    def apply():
        domain.core_entries = [[] for _ in range(domain.num_cores)]
        domain.wpq = []
        domain.pc_checkpoints = {
            c: (r.continuation, r.region_id)
            for c, r in enumerate(resumes)
            if r is not None
        }
        out.committed = True

    yield emit, apply


def prepare_resumed_run(
    recovered: RecoveredState,
    module: Module,
    spawns: Sequence[Tuple[str, Sequence[int]]],
    params=None,
    threshold: int = 256,
    quantum: int = 32,
):
    """Build a (machine, system) pair continuing execution *under Capri*.

    Unlike :func:`resume_and_finish` (functional-only), the resumed run
    drives a fresh :class:`~repro.arch.system.CapriSystem` seeded with the
    recovered durable image — so a *second* power failure can be injected
    and recovered, modelling repeated outages (whole-system persistence
    must survive any number of them).
    """
    from repro.arch.params import SimParams
    from repro.arch.system import CapriSystem

    machine = _build_resumed_machine(recovered, module, spawns, quantum)
    system = CapriSystem(
        params or SimParams.scaled(),
        num_cores=max(1, len(spawns)),
        threshold=threshold,
    )
    system.machine = machine
    system.nvm.image.update(recovered.nvm_image)
    # Checkpoint-array integrity words survive with the array.
    system.nvm.ckpt_shadow.update(recovered.ckpt_shadow)
    # The durable PC checkpoints survive the outage: re-seed them so an
    # immediate second crash still finds its resume points.
    for core, resume in enumerate(recovered.resumes):
        if resume is not None:
            system.nvm.pc_checkpoints[core] = (
                resume.continuation,
                resume.region_id,
            )
    return machine, system


def _build_resumed_machine(
    recovered: RecoveredState,
    module: Module,
    spawns: Sequence[Tuple[str, Sequence[int]]],
    quantum: int,
) -> Machine:
    machine = Machine(module, quantum=quantum)
    machine.memory = dict(recovered.nvm_image)
    quarantined = set(recovered.report.quarantined_cores)
    for core, resume in enumerate(recovered.resumes):
        if core in quarantined:
            # Fenced-off core: leave its slot empty — it must not run.
            while len(machine.harts) <= core:
                machine.harts.append(None)  # type: ignore[arg-type]
            continue
        if resume is not None:
            machine.resume(core, resume.continuation, resume.registers)
        else:
            if core >= len(spawns):
                raise RecoveryError(
                    f"core {core}: no spawn configuration for cold restart"
                )
            func_name, args = spawns[core]
            func = module.functions[func_name]
            cold = Continuation(
                func_name=func_name,
                label=func.entry.label,
                index=0,
                callstack=(),
            )
            regs = list(args) + [0] * (func.num_regs - len(args))
            machine.resume(core, cold, regs)
    for core in range(len(recovered.resumes), len(spawns)):
        func_name, args = spawns[core]
        hart = machine.spawn(func_name, args)
        hart.started = True  # no spawn-time persistence events on replay
    return machine


def resume_and_finish(
    recovered: RecoveredState,
    module: Module,
    spawns: Sequence[Tuple[str, Sequence[int]]],
    quantum: int = 32,
    max_steps: int = 50_000_000,
    observer=None,
) -> Machine:
    """Restart execution from a recovered state and run to completion.

    Cores with a resume point continue at their interrupted region; cores
    without one restart from their spawn configuration.  Returns the
    finished machine (its memory is the post-recovery final state).
    """
    machine = _build_resumed_machine(recovered, module, spawns, quantum)
    machine.run(observer, max_steps=max_steps)
    return machine
