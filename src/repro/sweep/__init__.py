"""Parallel sweep engine with a persistent, content-addressed result cache.

The evaluation is a large cross-product — benchmarks × the Figure 9
optimisation ladder × the Figure 8 threshold sweep × ablations — and every
cell is a deterministic simulation of a frozen :class:`~repro.api.RunSpec`.
This package exploits both facts:

* :func:`repro.sweep.engine.run_specs` — topologically schedules specs
  (volatile baselines first), fans them out across a ``multiprocessing``
  pool, and reports structured per-spec progress,
* :mod:`repro.sweep.cache` — an on-disk cache keyed by spec fingerprint
  (workload, scale, config, threshold, params, quantum), validated per
  entry against the recorded subsystem dependencies (:mod:`repro.deps`),
  so warm re-runs of ``EvalHarness.sweep``, the ablations, and
  fault-campaign golden runs are near-instant and survive unrelated
  source edits,
* ``python -m repro sweep`` — the command-line front end (``--since
  <rev>`` reports exactly which figures a code change moved, and why).
"""

from repro.sweep.cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    ResultCache,
    default_cache_dir,
    resolve_cache,
)
from repro.sweep.engine import (
    DeltaReport,
    SpecDelta,
    SpecStatus,
    SweepError,
    SweepReport,
    run_specs,
)

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "default_cache_dir",
    "resolve_cache",
    "DeltaReport",
    "SpecDelta",
    "SpecStatus",
    "SweepError",
    "SweepReport",
    "run_specs",
]
