"""The parallel sweep engine.

Takes a list of :class:`~repro.api.RunSpec`, schedules them
*topologically* — the deduplicated volatile baselines run first, then the
instrumented runs that normalise against them — fans each wave out across
a ``multiprocessing`` pool, and memoises every completed simulation in a
:class:`~repro.sweep.cache.ResultCache` keyed by the spec fingerprint.

Degradation contract: a worker exception (unknown workload, compiler
bug, timeout) marks *that spec* failed with the captured traceback and
the sweep continues; an instrumented spec whose baseline failed is marked
failed without being run.  Parallel results are bit-identical to serial
ones — both paths round-trip metrics through the same JSON-able dict
(Python floats survive that exactly), and the simulator itself is
deterministic.
"""

from __future__ import annotations

import multiprocessing
import signal
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.api import (
    RunResult,
    RunSpec,
    code_version,
    execute_spec,
    metrics_from_dict,
    metrics_to_dict,
)
from repro.deps import deps_token
from repro.sweep.cache import ResultCache, resolve_cache

#: Per-spec status values, in lifecycle order.
PENDING, RUNNING, CACHED, OK, FAILED = "pending", "running", "cached", "ok", "failed"

ProgressFn = Callable[["SpecStatus"], None]


@dataclass
class SpecStatus:
    """Structured progress for one scheduled spec (baselines included)."""

    spec: RunSpec
    fingerprint: str
    role: str = "run"  # "run" (an input spec) or "baseline" (derived)
    state: str = PENDING
    wall_s: float = 0.0
    error: str = ""

    def line(self) -> str:
        tag = "(baseline)" if self.role == "baseline" else ""
        out = f"{self.state:>7}  {self.spec.describe():<40} {self.wall_s:7.2f}s {tag}"
        return out.rstrip()


@dataclass
class SpecDelta:
    """One spec's fate in a delta sweep (``run_specs(..., since=rev)``)."""

    spec: RunSpec
    fingerprint: str
    role: str = "run"
    #: "warm" (served from cache), "resimulated" (cache entry went
    #: dependency-stale), "new" (never cached), or "failed".
    outcome: str = "warm"
    #: which recorded dependencies invalidated the old entry.
    stale_subsystems: List[str] = field(default_factory=list)
    old_exec_cycles: Optional[float] = None
    new_exec_cycles: Optional[float] = None

    @property
    def value_changed(self) -> bool:
        """Did the re-run actually move the figure?"""
        return (
            self.old_exec_cycles is not None
            and self.new_exec_cycles is not None
            and self.old_exec_cycles != self.new_exec_cycles
        )

    def to_dict(self) -> Dict:
        return {
            "spec": self.spec.describe(),
            "label": self.spec.label,
            "fingerprint": self.fingerprint,
            "role": self.role,
            "outcome": self.outcome,
            "stale_subsystems": list(self.stale_subsystems),
            "old_exec_cycles": self.old_exec_cycles,
            "new_exec_cycles": self.new_exec_cycles,
            "value_changed": self.value_changed,
        }


@dataclass
class DeltaReport:
    """What changed since a git revision, and what it cost to find out."""

    since: str
    #: subsystems whose content hash differs from ``since``.
    changed_subsystems: List[str] = field(default_factory=list)
    entries: List[SpecDelta] = field(default_factory=list)

    def by_outcome(self, outcome: str) -> List[SpecDelta]:
        return [e for e in self.entries if e.outcome == outcome]

    @property
    def changed_figures(self) -> List[SpecDelta]:
        """Re-runs whose metrics actually differ from the stale entry."""
        return [e for e in self.entries if e.value_changed]

    def summary(self) -> str:
        counts = {
            o: len(self.by_outcome(o))
            for o in ("warm", "resimulated", "new", "failed")
        }
        changed = ", ".join(self.changed_subsystems) or "none"
        lines = [
            f"delta since {self.since}: changed subsystems: {changed}",
            f"  {len(self.entries)} specs — {counts['warm']} warm, "
            f"{counts['resimulated']} re-simulated, {counts['new']} new, "
            f"{counts['failed']} failed",
        ]
        moved = self.changed_figures
        if moved:
            for entry in moved:
                why = ",".join(entry.stale_subsystems) or "?"
                lines.append(
                    f"  CHANGED {entry.spec.describe():<40} "
                    f"{entry.old_exec_cycles:.0f} -> "
                    f"{entry.new_exec_cycles:.0f} cycles  ({why})"
                )
        elif counts["resimulated"]:
            lines.append("  figures unchanged (re-runs reproduced old values)")
        else:
            lines.append("  figures unchanged")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "since": self.since,
            "changed_subsystems": list(self.changed_subsystems),
            "entries": [e.to_dict() for e in self.entries],
            "changed_figures": [e.to_dict() for e in self.changed_figures],
        }


@dataclass
class SweepReport:
    """Everything one engine invocation produced."""

    statuses: List[SpecStatus] = field(default_factory=list)
    #: Results aligned with the *input* spec list (``None`` for failures).
    results: List[Optional[RunResult]] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    simulations: int = 0
    failures: int = 0
    wall_s: float = 0.0
    workers: int = 0
    #: populated by ``run_specs(..., since=rev)``: what changed and why.
    delta: Optional[DeltaReport] = None

    @property
    def ok(self) -> bool:
        return self.failures == 0

    @property
    def hit_rate(self) -> float:
        looked = self.cache_hits + self.cache_misses
        return self.cache_hits / looked if looked else 0.0

    def failed_statuses(self) -> List[SpecStatus]:
        return [s for s in self.statuses if s.state == FAILED]

    def summary(self) -> str:
        lines = [
            f"sweep: {len(self.results)} specs "
            f"({sum(1 for s in self.statuses if s.role == 'baseline')} baselines)  "
            f"workers={self.workers}  wall={self.wall_s:.2f}s",
            f"  cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"({100.0 * self.hit_rate:.0f}% hit rate)  "
            f"simulations: {self.simulations}  failures: {self.failures}",
        ]
        for status in self.failed_statuses():
            first = status.error.strip().splitlines()
            lines.append(
                f"  FAILED {status.spec.describe()}: "
                f"{first[-1] if first else 'unknown error'}"
            )
        return "\n".join(lines)


class SweepError(RuntimeError):
    """Raised by strict callers when a sweep has failures."""

    def __init__(self, report: SweepReport) -> None:
        failed = report.failed_statuses()
        detail = "; ".join(
            f"{s.spec.describe()}: {s.error.strip().splitlines()[-1]}"
            for s in failed[:4]
            if s.error.strip()
        )
        super().__init__(
            f"{len(failed)} of {len(report.statuses)} sweep specs failed"
            + (f" — {detail}" if detail else "")
        )
        self.report = report


# ---------------------------------------------------------------------------
# worker
# ---------------------------------------------------------------------------

class _Timeout(Exception):
    pass


def _alarm_handler(signum, frame):  # pragma: no cover - signal path
    raise _Timeout("spec timed out")


def _worker(job: Tuple[str, RunSpec, Optional[float]]):
    """Run one spec; always returns, never raises (pool stays healthy).

    Returns ``(fingerprint, state, metrics_dict | None, deps, wall_s,
    error)`` where ``deps`` is the probed subsystem tuple.  Metrics
    travel as plain dicts so the parent rebuilds them through the exact
    same code path a cache hit uses — that is what makes parallel,
    serial and warm runs bit-identical.
    """
    fingerprint, spec, timeout_s = job
    start = time.perf_counter()
    old_handler = None
    use_alarm = timeout_s is not None and hasattr(signal, "SIGALRM")
    try:
        if use_alarm:
            old_handler = signal.signal(signal.SIGALRM, _alarm_handler)
            signal.setitimer(signal.ITIMER_REAL, timeout_s)
        result = execute_spec(spec)
        return (
            fingerprint,
            OK,
            metrics_to_dict(result.metrics),
            list(result.deps),
            time.perf_counter() - start,
            "",
        )
    except BaseException:
        return (
            fingerprint,
            FAILED,
            None,
            [],
            time.perf_counter() - start,
            traceback.format_exc(),
        )
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            if old_handler is not None:
                signal.signal(signal.SIGALRM, old_handler)


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------

def run_specs(
    specs: Sequence[RunSpec],
    workers: int = 0,
    cache: Union[ResultCache, str, None, bool] = None,
    progress: Optional[ProgressFn] = None,
    timeout_s: Optional[float] = None,
    since: Optional[str] = None,
) -> SweepReport:
    """Execute ``specs`` (plus their derived baselines) and report.

    ``workers=0`` (or 1) runs serially in-process; ``workers=N`` fans out
    over an ``N``-process pool.  ``cache`` accepts anything
    :func:`~repro.sweep.cache.resolve_cache` does; ``None`` disables disk
    memoisation (completed runs are still deduplicated within the call).
    Per-spec ``timeout_s`` is enforced with ``SIGALRM`` inside workers
    (parallel mode only — a serial alarm would kill the caller).

    ``since`` turns this into a **delta sweep**: the report's
    :attr:`~SweepReport.delta` explains, against git revision ``since``,
    which subsystems changed, which specs that invalidated (with the old
    vs new metrics), and which stayed warm.  The execution itself is
    unchanged — dependency validation in the cache already re-runs
    exactly the stale specs; ``since`` adds the explanation.
    """
    started = time.perf_counter()
    store = resolve_cache(cache)
    report = SweepReport(workers=workers)
    changed_subsystems: List[str] = []
    if since is not None:
        # Function-level import so tests monkeypatch the fingerprint
        # module's attribute and this picks the patch up.
        from repro.deps import fingerprint as _fingerprint

        changed_subsystems = _fingerprint.changed_subsystems_since(since)

    fps = [spec.fingerprint() for spec in specs]

    # Wave 0: deduplicated baselines (incl. input specs that *are* volatile
    # baselines of themselves); wave 1: the instrumented remainder.
    wave0: Dict[str, SpecStatus] = {}
    wave1: Dict[str, SpecStatus] = {}
    baseline_fp: List[Optional[str]] = []
    for spec, fp in zip(specs, fps):
        if spec.effective_persistence:
            base = spec.baseline()
            bfp = base.fingerprint()
            baseline_fp.append(bfp)
            if bfp not in wave0:
                wave0[bfp] = SpecStatus(base, bfp, role="baseline")
            if fp not in wave1:
                wave1[fp] = SpecStatus(spec, fp)
        else:
            baseline_fp.append(None)
            if fp not in wave0:
                wave0[fp] = SpecStatus(spec, fp)
    # An input spec may coincide with a derived baseline: promote its role.
    for fp in fps:
        if fp in wave0:
            wave0[fp].role = "run"
    report.statuses = [*wave0.values(), *wave1.values()]

    completed: Dict[str, Dict] = {}  # fingerprint -> metrics dict

    def finish(status: SpecStatus) -> None:
        if status.state == FAILED:
            report.failures += 1
        if progress is not None:
            progress(status)

    def run_wave(wave: Dict[str, SpecStatus]) -> None:
        todo: List[Tuple[str, RunSpec, Optional[float]]] = []
        for fp, status in wave.items():
            if fp in completed:  # already produced this call
                status.state = CACHED
                finish(status)
                continue
            payload = store.get(fp) if store is not None else None
            if payload is not None and isinstance(payload.get("metrics"), dict):
                report.cache_hits += 1
                completed[fp] = payload["metrics"]
                status.state = CACHED
                finish(status)
                continue
            if store is not None:
                report.cache_misses += 1
            # A spec whose baseline already failed cannot be normalised;
            # mark it failed without burning a worker on it.
            base_fp = (
                status.spec.baseline().fingerprint()
                if status.spec.effective_persistence and status.role == "run"
                else None
            )
            if base_fp is not None and wave0.get(base_fp, None) is not None:
                if wave0[base_fp].state == FAILED:
                    status.state = FAILED
                    status.error = (
                        "baseline run failed:\n" + wave0[base_fp].error
                    )
                    finish(status)
                    continue
            status.state = RUNNING
            todo.append((fp, status.spec, timeout_s if workers > 1 else None))

        if not todo:
            return
        outcomes = []
        if workers > 1:
            ctx = _pool_context()
            pool = ctx.Pool(processes=workers)
            try:
                for outcome in pool.imap_unordered(_worker, todo, chunksize=1):
                    outcomes.append(outcome)
            except Exception as err:  # broken pool: fail what never returned
                seen = {fp for fp, *_ in outcomes}
                for fp, spec, _ in todo:
                    if fp not in seen:
                        outcomes.append(
                            (fp, FAILED, None, [], 0.0,
                             f"worker pool broke: {err!r}")
                        )
            finally:
                pool.terminate()
                pool.join()
        else:
            for job in todo:
                outcomes.append(_worker(job))

        for fp, state, metrics_dict, deps, wall, error in outcomes:
            status = wave[fp]
            status.state = state
            status.wall_s = wall
            status.error = error
            if state == OK:
                report.simulations += 1
                completed[fp] = metrics_dict
                if store is not None:
                    store.put(
                        fp,
                        {
                            "kind": "metrics",
                            # deps drive validation; code_version stays
                            # as provenance + pre-deps fallback.
                            "deps": deps_token(deps),
                            "code_version": code_version(),
                            "workload": status.spec.workload,
                            "label": status.spec.label,
                            "wall_s": wall,
                            "metrics": metrics_dict,
                        },
                    )
            finish(status)

    run_wave(wave0)
    run_wave(wave1)

    # Assemble per-input results in input order.
    statuses_by_fp = {**wave0, **wave1}
    for spec, fp, bfp in zip(specs, fps, baseline_fp):
        metrics_dict = completed.get(fp)
        if metrics_dict is None:
            report.results.append(None)
            continue
        baseline_cycles = None
        if bfp is not None and bfp in completed:
            baseline_cycles = metrics_from_dict(completed[bfp]).exec_cycles
        elif bfp is None:
            baseline_cycles = metrics_from_dict(metrics_dict).exec_cycles
        report.results.append(
            RunResult(
                spec=spec,
                metrics=metrics_from_dict(metrics_dict),
                fingerprint=fp,
                baseline_cycles=baseline_cycles,
                wall_s=statuses_by_fp[fp].wall_s,
                from_cache=statuses_by_fp[fp].state == CACHED,
            )
        )

    if since is not None:
        delta = DeltaReport(since=since, changed_subsystems=changed_subsystems)
        stale_log = store.stale_log if store is not None else {}
        for fp, status in statuses_by_fp.items():
            stale_info = stale_log.get(("runs", fp))
            if status.state == FAILED:
                outcome = "failed"
            elif status.state == CACHED:
                outcome = "warm"
            elif stale_info is not None:
                outcome = "resimulated"
            else:
                outcome = "new"
            old_cycles = None
            if stale_info is not None and isinstance(
                stale_info.get("metrics"), dict
            ):
                old_cycles = stale_info["metrics"].get("exec_cycles")
            new_metrics = completed.get(fp)
            delta.entries.append(
                SpecDelta(
                    spec=status.spec,
                    fingerprint=fp,
                    role=status.role,
                    outcome=outcome,
                    stale_subsystems=list(
                        stale_info["subsystems"] if stale_info else []
                    ),
                    old_exec_cycles=old_cycles,
                    new_exec_cycles=(
                        new_metrics.get("exec_cycles") if new_metrics else None
                    ),
                )
            )
        report.delta = delta

    report.wall_s = time.perf_counter() - started
    return report
