"""Command-line front end for the sweep engine.

Examples::

    # Cold 2-worker threshold sweep over two benchmarks:
    python -m repro sweep --benchmarks ssca2,genome --thresholds 64,256 \\
        --scale 0.1 --workers 2

    # The Figure 9 optimisation ladder, all benchmarks, warm from cache:
    python -m repro sweep --ladder --workers 4

    # CI gate: warm re-run must be >=90% cache hits.
    python -m repro sweep --benchmarks ssca2,genome --thresholds 64 \\
        --scale 0.05 --cache-dir .ci-cache --min-hit-rate 0.9

    # Delta sweep: what did the working tree change since HEAD~1, which
    # cached figures does that invalidate, and did the numbers move?
    python -m repro sweep --benchmarks ssca2,genome --thresholds 64 \\
        --scale 0.05 --since HEAD~1

Exit status is non-zero if any spec failed, or if ``--min-hit-rate`` was
given and the observed cache hit rate fell below it.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.compiler import OptConfig
from repro.deps import DepsError
from repro.eval.report import format_table
from repro.jsonout import add_json_arg, resolved_json_out, write_envelope


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Parallel benchmark sweep with persistent result cache",
    )
    parser.add_argument(
        "--benchmarks",
        default="all",
        help="comma-separated registry names, or 'all' (the figure suites)",
    )
    parser.add_argument(
        "--suite", default=None, help="restrict 'all' to one figure suite"
    )
    parser.add_argument(
        "--thresholds",
        default="256",
        help="comma-separated region store thresholds (full-Capri config)",
    )
    parser.add_argument(
        "--ladder",
        action="store_true",
        help="sweep the Figure 9 optimisation ladder instead of thresholds",
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--quantum", type=int, default=32)
    parser.add_argument(
        "--workers", type=int, default=0, help="worker processes (0 = serial)"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache root (default: $REPRO_CACHE_DIR or results/.sweep-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk cache"
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-spec timeout in seconds (parallel mode only)",
    )
    add_json_arg(parser)
    parser.add_argument(
        "--since",
        metavar="REV",
        default=None,
        help="delta mode: diff subsystem hashes against git REV and "
        "report which cached figures the change invalidated (and "
        "whether their values moved)",
    )
    parser.add_argument(
        "--min-hit-rate", type=float, default=None,
        help="exit non-zero if the cache hit rate is below this fraction",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="replay captured columnar traces (repro.trace) instead of "
        "re-interpreting each spec — the functional stream is recorded "
        "once per (workload, config) and reused across parameter points",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-spec progress lines"
    )
    args = parser.parse_args(argv)

    from repro.arch.params import SimParams
    from repro.eval.figures import FIGURE_SUITES
    from repro.eval.harness import EvalHarness

    if args.benchmarks == "all":
        suites = (
            FIGURE_SUITES
            if args.suite is None
            else {args.suite: FIGURE_SUITES[args.suite]}
        )
        names = [name for members in suites.values() for name in members]
    else:
        names = [n.strip() for n in args.benchmarks.split(",") if n.strip()]

    if args.ladder:
        configs: Dict[str, OptConfig] = OptConfig.ladder()
    else:
        thresholds = [int(t) for t in args.thresholds.split(",") if t.strip()]
        configs = {str(t): OptConfig.licm(t) for t in thresholds}

    cache = None if args.no_cache else (args.cache_dir or "default")
    progress = None
    if not args.quiet:
        progress = lambda status: print(f"  {status.line()}", file=sys.stderr)

    harness = EvalHarness(
        params=SimParams.scaled(),
        scale=args.scale,
        quantum=args.quantum,
        trace=args.trace,
    )
    try:
        table = harness.sweep(
            names,
            configs,
            workers=args.workers,
            cache=cache,
            progress=progress,
            strict=False,
            timeout_s=args.timeout,
            since=args.since,
        )
    except KeyError as err:
        parser.error(str(err.args[0] if err.args else err))
    except DepsError as err:
        parser.error(f"--since {args.since}: {err}")
    report = harness.last_sweep_report

    columns = list(configs.keys())
    cells = {
        name: {
            label: result.normalized_cycles
            for label, result in table.get(name, {}).items()
        }
        for name in names
    }
    rows = [name for name in names if cells.get(name)]
    json_out = resolved_json_out(args, prog="repro sweep")
    if json_out != "-":
        print(
            format_table(
                f"Sweep: normalized cycles at scale {args.scale}",
                rows,
                columns,
                cells,
            )
        )
        print()
        print(report.summary())
        if report.delta is not None:
            print(report.delta.summary())

    if json_out:
        data = {
            "scale": args.scale,
            "columns": columns,
            "cells": cells,
            "report": {
                "cache_hits": report.cache_hits,
                "cache_misses": report.cache_misses,
                "hit_rate": report.hit_rate,
                "simulations": report.simulations,
                "failures": report.failures,
                "wall_s": report.wall_s,
                "workers": report.workers,
            },
        }
        if report.delta is not None:
            data["delta"] = report.delta.to_dict()
        write_envelope(json_out, "sweep", data)
        if json_out != "-":
            print(f"wrote {json_out}")

    if args.min_hit_rate is not None and report.hit_rate < args.min_hit_rate:
        print(
            f"FAIL: cache hit rate {report.hit_rate:.0%} below "
            f"required {args.min_hit_rate:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
