"""On-disk content-addressed result cache.

Layout (one JSON file per completed run, sharded by fingerprint prefix)::

    <root>/
      runs/a3/a3f0…e9.json     completed SystemMetrics payloads
      golden/41/41bc…77.json   fault-campaign golden runs
      …                        any other namespace ("kind")

Keys are :meth:`repro.api.RunSpec.fingerprint` digests — pure parameter
addresses since fingerprint schema 2.  *Validity* under code change is
decided per entry: a payload carrying a ``deps`` map (``{subsystem:
content-hash}``, recorded by the usage probe that watched the original
run) is served only while every named subsystem's current hash
(:func:`repro.deps.subsystem_hashes`) still matches — so editing an eval
script leaves simulations warm, while editing ``arch/`` invalidates
exactly the entries that exercised the architecture.  Entries with only
the legacy whole-tree ``code_version`` fall back to comparing that;
entries with neither (hand-rolled test payloads) are trusted as-is.
Stale entries count as misses (and into :attr:`ResultCache.stale` /
:attr:`ResultCache.stale_log` for delta reporting) and are overwritten
in place by the re-run — quarantine stays reserved for corruption.

Writes are atomic (temp file + ``os.replace``); unreadable or torn
entries are *quarantined* (renamed to ``*.corrupt``) and treated as
misses, never crashes — this cache sits under crash-consistency
campaigns, so it had better survive its own torn writes.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.deps import code_version, subsystem_hashes

#: Environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default location, relative to the working directory.
DEFAULT_CACHE_DIR = os.path.join("results", ".sweep-cache")


def default_cache_dir() -> Path:
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


class ResultCache:
    """Fingerprint-keyed JSON store with hit/miss/quarantine accounting."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0
        #: entries refused because a recorded dependency went stale.
        self.stale = 0
        #: (kind, fingerprint) -> {"subsystems": [...], "metrics": ...}
        #: for every stale refusal this session — the delta report reads
        #: this to explain *why* a spec re-ran and what it used to say.
        self.stale_log: Dict[Tuple[str, str], Dict[str, Any]] = {}

    # -- paths ---------------------------------------------------------------

    def path_for(self, fingerprint: str, kind: str = "runs") -> Path:
        return self.root / kind / fingerprint[:2] / f"{fingerprint}.json"

    # -- access --------------------------------------------------------------

    def get(self, fingerprint: str, kind: str = "runs") -> Optional[Dict[str, Any]]:
        """The stored payload, or ``None`` (corrupt entries quarantined,
        dependency-stale entries counted and refused)."""
        path = self.path_for(fingerprint, kind)
        try:
            with open(path, "r") as fh:
                payload = json.load(fh)
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not a JSON object")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, OSError):
            self._quarantine(path)
            self.misses += 1
            return None
        stale = self._stale_subsystems(payload)
        if stale:
            self.stale += 1
            self.stale_log[(kind, fingerprint)] = {
                "subsystems": stale,
                "metrics": payload.get("metrics"),
            }
            self.misses += 1
            return None
        self.hits += 1
        return payload

    @staticmethod
    def _stale_subsystems(payload: Dict[str, Any]) -> List[str]:
        """Which recorded dependencies no longer match the current code.

        An entry with a ``deps`` map is checked subsystem by subsystem;
        one with only the legacy ``code_version`` is checked against the
        whole-tree hash (reported as the pseudo-subsystem
        ``"<code-version>"``); one with neither is trusted — there is
        nothing to validate against.
        """
        deps = payload.get("deps")
        if isinstance(deps, dict) and deps:
            current = subsystem_hashes()
            return sorted(
                name
                for name, stored in deps.items()
                if current.get(name) != stored
            )
        stored_version = payload.get("code_version")
        if stored_version is not None and stored_version != code_version():
            return ["<code-version>"]
        return []

    def put(self, fingerprint: str, payload: Dict[str, Any], kind: str = "runs") -> Path:
        """Atomically persist ``payload`` under ``fingerprint``."""
        path = self.path_for(fingerprint, kind)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = dict(payload)
        record.setdefault("fingerprint", fingerprint)
        record.setdefault("created", time.time())
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{fingerprint[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(record, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    def _quarantine(self, path: Path) -> None:
        """Move an unreadable entry aside so the slot can be refilled."""
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:
            pass
        self.quarantined += 1

    def quarantine(self, fingerprint: str, kind: str = "runs") -> None:
        """Quarantine an entry whose *payload* failed validation.

        :meth:`get` quarantines entries that are not readable JSON
        objects; callers with stricter formats (the trace codec's
        checksum, for one) use this to apply the same torn-entry
        handling to entries that parsed but are internally corrupt.
        """
        self._quarantine(self.path_for(fingerprint, kind))

    # -- maintenance -----------------------------------------------------------

    def entry_count(self, kind: str = "runs") -> int:
        base = self.root / kind
        if not base.is_dir():
            return 0
        return sum(1 for _ in base.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry (all kinds); returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in self.root.glob("*/*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
            "stale": self.stale,
        }


def resolve_cache(
    cache: Union["ResultCache", str, Path, None, bool] = "default",
) -> Optional[ResultCache]:
    """Normalise a user-facing cache argument.

    ``"default"``/``True`` → cache at :func:`default_cache_dir`;
    ``None``/``False`` → caching disabled; a path → cache rooted there;
    a :class:`ResultCache` → itself.
    """
    if cache is None or cache is False:
        return None
    if isinstance(cache, ResultCache):
        return cache
    if cache == "default" or cache is True:
        return ResultCache(default_cache_dir())
    return ResultCache(cache)
