"""On-disk content-addressed result cache.

Layout (one JSON file per completed run, sharded by fingerprint prefix)::

    <root>/
      runs/a3/a3f0…e9.json     completed SystemMetrics payloads
      golden/41/41bc…77.json   fault-campaign golden runs
      …                        any other namespace ("kind")

Keys are :meth:`repro.api.RunSpec.fingerprint` digests, which embed
:func:`repro.api.code_version` — a source change anywhere in the package
orphans every old entry rather than serving stale results.  Writes are
atomic (temp file + ``os.replace``); unreadable or torn entries are
*quarantined* (renamed to ``*.corrupt``) and treated as misses, never
crashes — this cache sits under crash-consistency campaigns, so it had
better survive its own torn writes.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

#: Environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default location, relative to the working directory.
DEFAULT_CACHE_DIR = os.path.join("results", ".sweep-cache")


def default_cache_dir() -> Path:
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


class ResultCache:
    """Fingerprint-keyed JSON store with hit/miss/quarantine accounting."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0

    # -- paths ---------------------------------------------------------------

    def path_for(self, fingerprint: str, kind: str = "runs") -> Path:
        return self.root / kind / fingerprint[:2] / f"{fingerprint}.json"

    # -- access --------------------------------------------------------------

    def get(self, fingerprint: str, kind: str = "runs") -> Optional[Dict[str, Any]]:
        """The stored payload, or ``None`` (corrupt entries quarantined)."""
        path = self.path_for(fingerprint, kind)
        try:
            with open(path, "r") as fh:
                payload = json.load(fh)
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not a JSON object")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, OSError):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, fingerprint: str, payload: Dict[str, Any], kind: str = "runs") -> Path:
        """Atomically persist ``payload`` under ``fingerprint``."""
        path = self.path_for(fingerprint, kind)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = dict(payload)
        record.setdefault("fingerprint", fingerprint)
        record.setdefault("created", time.time())
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{fingerprint[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(record, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    def _quarantine(self, path: Path) -> None:
        """Move an unreadable entry aside so the slot can be refilled."""
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:
            pass
        self.quarantined += 1

    def quarantine(self, fingerprint: str, kind: str = "runs") -> None:
        """Quarantine an entry whose *payload* failed validation.

        :meth:`get` quarantines entries that are not readable JSON
        objects; callers with stricter formats (the trace codec's
        checksum, for one) use this to apply the same torn-entry
        handling to entries that parsed but are internally corrupt.
        """
        self._quarantine(self.path_for(fingerprint, kind))

    # -- maintenance -----------------------------------------------------------

    def entry_count(self, kind: str = "runs") -> int:
        base = self.root / kind
        if not base.is_dir():
            return 0
        return sum(1 for _ in base.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry (all kinds); returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in self.root.glob("*/*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
        }


def resolve_cache(
    cache: Union["ResultCache", str, Path, None, bool] = "default",
) -> Optional[ResultCache]:
    """Normalise a user-facing cache argument.

    ``"default"``/``True`` → cache at :func:`default_cache_dir`;
    ``None``/``False`` → caching disabled; a path → cache rooted there;
    a :class:`ResultCache` → itself.
    """
    if cache is None or cache is False:
        return None
    if isinstance(cache, ResultCache):
        return cache
    if cache == "default" or cache is True:
        return ResultCache(default_cache_dir())
    return ResultCache(cache)
