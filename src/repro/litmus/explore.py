"""Bounded-exhaustive interleaving exploration of litmus programs.

Two layers share one schedule universe (sequences of hart ids, one
entry per retired instruction — straight-line programs make per-hart
instruction counts schedule-independent, so the universe is exactly the
multiset permutations of those counts):

* **spec layer** — every schedule drives a fresh functional
  :class:`~repro.isa.machine.Machine` observed by a
  :class:`~repro.litmus.oracle.LitmusOracle`; the allowed post-crash
  sets of *every prefix of every schedule* are unioned into the
  program's interleaving-closed allowed set.  This is the set the
  campaign-agreement tests check observed outcomes against.
* **pipeline layer** — a deterministic subset of schedules additionally
  drives the full timing/persistence system
  (:func:`~repro.arch.system.build_system`) with the
  :class:`~repro.check.checker.PersistencyChecker` teed in, then
  ``system.finish()`` + ``checker.finalize`` — the reference automaton
  must stay silent on every explored interleaving of the faithful
  protocol.

When the schedule universe exceeds ``max_schedules`` the explorer
samples deterministically from the program seed (always including the
canonical round-robin schedule) and reports ``exhaustive=False``.
``step_limit`` caps per-hart instructions so small prefixes can be
covered *truly* exhaustively: every interleaving of a truncated program
is a prefix of full executions, so its outcomes are sound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from math import factorial
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.isa.machine import Machine
from repro.litmus.generate import LitmusProgram
from repro.litmus.oracle import LitmusOracle


@dataclass
class ExploreResult:
    """What bounded-exhaustive exploration of one program established."""

    name: str
    seed: int
    #: exact size of the (possibly step-limited) schedule universe.
    schedule_universe: int
    schedules_run: int
    exhaustive: bool
    step_limit: Optional[int]
    #: addr -> union of allowed post-crash values over every prefix of
    #: every explored schedule (interleaving-closed allowed set).
    allowed: Dict[int, FrozenSet[int]]
    pipeline_schedules: int = 0
    pipeline_violations: int = 0
    pipeline_kinds: List[str] = field(default_factory=list)

    def allows(self, addr: int, value: int) -> bool:
        return value in self.allowed.get(addr, frozenset((0,)))


def _multiset_permutations(counts: List[int]) -> Iterator[Tuple[int, ...]]:
    """Every interleaving of ``counts[i]`` copies of symbol ``i``."""
    remaining = list(counts)
    total = sum(remaining)
    seq: List[int] = []

    def rec() -> Iterator[Tuple[int, ...]]:
        if len(seq) == total:
            yield tuple(seq)
            return
        for h, left in enumerate(remaining):
            if left:
                remaining[h] -= 1
                seq.append(h)
                yield from rec()
                seq.pop()
                remaining[h] += 1

    yield from rec()


def universe_size(counts: Sequence[int]) -> int:
    """``(sum counts)! / prod(counts!)`` — the schedule universe size."""
    size = factorial(sum(counts))
    for c in counts:
        size //= factorial(c)
    return size


def round_robin_schedule(counts: Sequence[int], quantum: int) -> Tuple[int, ...]:
    """The canonical :meth:`Machine.run` order: ``quantum`` per hart in turn."""
    remaining = list(counts)
    out: List[int] = []
    while any(remaining):
        for h, left in enumerate(remaining):
            take = min(quantum, left)
            out.extend([h] * take)
            remaining[h] -= take
    return tuple(out)


def _sample_schedule(counts: Sequence[int], rng: random.Random) -> Tuple[int, ...]:
    pool: List[int] = []
    for h, c in enumerate(counts):
        pool.extend([h] * c)
    rng.shuffle(pool)
    return tuple(pool)


def _complete_schedule(
    schedule: Sequence[int], counts: Sequence[int], quantum: int
) -> Tuple[int, ...]:
    """Extend a truncated schedule round-robin until every hart finishes
    (the pipeline layer's ``finish``/``finalize`` wants completed runs)."""
    remaining = list(counts)
    for h in schedule:
        if remaining[h] > 0:
            remaining[h] -= 1
    return tuple(schedule) + round_robin_schedule(remaining, quantum)


def _spec_run(
    program: LitmusProgram,
    schedule: Sequence[int],
    union: Dict[int, set],
) -> None:
    """Drive one schedule through machine+oracle, unioning every prefix.

    Instruction-granular prefixes cover event-granular crash points:
    the machine emits an instruction's retire before its effect event,
    and a crash between the two leaves persistent state equal to one of
    the two adjacent instruction boundaries.
    """
    machine = Machine(program.module, quantum=program.quantum)
    for name, args in program.spawns:
        machine.spawn(name, args)
    oracle = LitmusOracle()
    for h in schedule:
        hart = machine.harts[h]
        if hart.halted:
            continue
        machine._run_quantum(hart, oracle, 1)
        for addr in oracle.touched:
            union.setdefault(addr, set()).update(oracle.allowed_for(addr))


def _pipeline_run(
    program: LitmusProgram,
    schedule: Sequence[int],
    threshold: int,
    params,
) -> List[str]:
    """One full-length schedule through timing system + reference checker."""
    from repro.arch.system import build_system
    from repro.check.checker import PersistencyChecker
    from repro.isa.trace import TeeObserver

    machine, system = build_system(
        program.module,
        program.spawns,
        params=params,
        threshold=threshold,
        quantum=program.quantum,
    )
    checker = PersistencyChecker.attach(system)
    tee = TeeObserver(checker, system)
    for h in schedule:
        hart = machine.harts[h]
        if not hart.halted:
            machine._run_quantum(hart, tee, 1)
    system.finish()
    checker.finalize(system)
    return [v.kind for v in checker.report.violations]


def explore_program(
    program: LitmusProgram,
    max_schedules: int = 200,
    pipeline_schedules: int = 6,
    step_limit: Optional[int] = None,
    threshold: int = 32,
    params=None,
) -> ExploreResult:
    """Explore ``program``'s interleavings; see the module docstring."""
    from repro.deps import touch

    touch("litmus")
    if params is None:
        from repro.litmus.matrix import litmus_params

        params = litmus_params()
    counts = program.instr_counts()
    capped = (
        counts
        if step_limit is None
        else [min(c, step_limit) for c in counts]
    )
    size = universe_size(capped)
    exhaustive = size <= max_schedules
    rr = round_robin_schedule(counts, program.quantum)
    if exhaustive:
        # Enumerate interleavings of the capped counts, then complete
        # each with the per-hart remainders so the run still finishes
        # (oracle prefixes beyond the cap are extra coverage, never
        # missing coverage).
        schedules = [
            _complete_schedule(s, counts, program.quantum)
            for s in _multiset_permutations(list(capped))
        ]
    else:
        rng = random.Random(0x11709 ^ (program.seed * 0x9E3779B9))
        schedules = [rr]
        schedules.extend(
            _sample_schedule(counts, rng) for _ in range(max_schedules - 1)
        )

    union: Dict[int, set] = {addr: {0} for addr in program.addrs}
    for schedule in schedules:
        _spec_run(program, schedule, union)

    kinds: List[str] = []
    pipeline_run = 0
    for schedule in schedules[:pipeline_schedules]:
        kinds.extend(_pipeline_run(program, schedule, threshold, params))
        pipeline_run += 1

    return ExploreResult(
        name=program.name,
        seed=program.seed,
        schedule_universe=size,
        schedules_run=len(schedules),
        exhaustive=exhaustive,
        step_limit=step_limit,
        allowed={addr: frozenset(vals) for addr, vals in union.items()},
        pipeline_schedules=pipeline_run,
        pipeline_violations=len(kinds),
        pipeline_kinds=kinds,
    )
