"""The litmus execution matrix: crash everywhere, judge every outcome.

For one program the matrix (1) captures the golden event stream once
(:func:`repro.trace.record.capture_trace`), (2) derives one
:class:`~repro.litmus.oracle.OutcomeSnapshot` per crash index, then
(3) sweeps a crash at **every** observer event through the
replay-accelerated campaign engine
(:class:`repro.trace.replay.TraceCampaignSource`) and judges each
recovered state on three components:

* **nvm** — every data word of the recovered NVM image is in the
  oracle's per-address allowed set for that crash index,
* **resume** — every core resumes at its last architecturally-committed
  region (cold restart only when nothing committed yet),
* **final** — after :func:`~repro.arch.recovery.resume_and_finish`,
  single-writer words equal the golden final image exactly and
  multi-writer words hold some hart's final store value (resumed
  interleavings may legitimately re-race; exact golden equality would
  false-positive) or, when no post-resume store hits the word, a
  crash-allowed value.

Recovery runs **lenient** (``strict=False``) so planted protocol bugs
produce judgeable forbidden outcomes instead of typed errors — and the
judge grants *no* quarantine exemption: litmus runs are fault-free, so
any corruption recovery quarantines is itself a protocol bug.

The sweep ascends, so the first forbidden crash index is event-minimal;
the emitted :class:`LitmusWitness` is re-confirmed by a direct
(non-replay) run of the same crash point.  Verdicts are cached in the
:class:`~repro.sweep.cache.ResultCache` ``litmus`` namespace under a
content fingerprint with :mod:`repro.deps` staleness tokens.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.litmus.generate import LitmusProgram
from repro.litmus.oracle import (
    OutcomeSnapshot,
    multi_writer_addrs,
    oracle_snapshots,
    per_core_last_writes,
)

#: Mutants the litmus matrix is *expected to miss*: both corrupt the
#: cache-invalidation path, which only acts on regular-path writebacks —
#: litmus programs run with full-size caches precisely so no writeback
#: ever occurs (tiny caches would evict mid-region and make the
#: architectural-commit oracle unsound).  The macro-workload matrix
#: (`repro check mutants`) owns these two.
EXPECTED_MISSES = ("drop_invalidation", "invalidate_everything")


def litmus_params(throttled: bool = True):
    """Simulator parameters for litmus runs.

    Full-size (default ``scaled``) caches: a handful of words never
    evicts, so NVM changes only through the persistence protocol and
    the oracle's architectural-commit semantics are exact.  With
    ``throttled`` (the default) write parallelism is cut to deepen
    drain FIFOs — the merge/reorder/drain-past-boundary windows; the
    un-throttled point lets drains *complete and free their entries*
    before late crash points, which is where drain-corruption bugs
    (``redo_writes_undo``, ``skip_ckpt_flush``) become recoverable
    state instead of being masked by the buffer replay.
    """
    from repro.arch.params import SimParams

    params = SimParams.scaled()
    return params.with_(nvm_write_parallelism=2) if throttled else params


def param_points():
    """The two drain regimes every mutant sweep visits (see
    :func:`litmus_params`)."""
    return (litmus_params(throttled=True), litmus_params(throttled=False))


@dataclass
class LitmusWitness:
    """A minimized forbidden-outcome witness: one crash index, the
    failing judgment components, and the event the crash preceded."""

    name: str
    seed: int
    event_index: int
    event: str
    failures: List[Dict[str, object]]
    mutations: Tuple[str, ...] = ()
    #: the direct (non-replay) re-run reproduced the forbidden outcome.
    confirmed: bool = False

    def to_payload(self) -> Dict[str, object]:
        d = asdict(self)
        d["mutations"] = list(self.mutations)
        return d

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "LitmusWitness":
        data = dict(payload)
        data["mutations"] = tuple(data.get("mutations", ()))
        return cls(**data)


@dataclass
class LitmusVerdict:
    """Outcome of one program through the full crash matrix."""

    name: str
    seed: int
    content_hash: str
    mutations: Tuple[str, ...]
    crash_points: int
    forbidden: int
    checks: int
    elapsed: float
    witness: Optional[LitmusWitness] = None
    replay_rebuilds: int = 0
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.forbidden == 0

    def to_payload(self) -> Dict[str, object]:
        return {
            "schema": 1,
            "name": self.name,
            "seed": self.seed,
            "content_hash": self.content_hash,
            "mutations": list(self.mutations),
            "crash_points": self.crash_points,
            "forbidden": self.forbidden,
            "checks": self.checks,
            "elapsed": self.elapsed,
            "witness": self.witness.to_payload() if self.witness else None,
            "replay_rebuilds": self.replay_rebuilds,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "LitmusVerdict":
        witness = payload.get("witness")
        return cls(
            name=payload["name"],
            seed=payload["seed"],
            content_hash=payload["content_hash"],
            mutations=tuple(payload.get("mutations", ())),
            crash_points=payload["crash_points"],
            forbidden=payload["forbidden"],
            checks=payload["checks"],
            elapsed=payload.get("elapsed", 0.0),
            witness=LitmusWitness.from_payload(witness) if witness else None,
            replay_rebuilds=payload.get("replay_rebuilds", 0),
            cached=True,
        )


def verdict_fingerprint(
    program: LitmusProgram,
    threshold: int,
    params,
    mutations,
    check: bool = True,
) -> str:
    """Content address of one (program, config, mutations) verdict."""
    from dataclasses import asdict as params_asdict

    spec = {
        "schema": 1,
        "kind": "litmus",
        "seed": program.seed,
        "program": program.content_hash(),
        "threshold": threshold,
        "quantum": program.quantum,
        "params": params_asdict(params),
        "mutations": sorted(mutations.active) if mutations else [],
        "check": check,
    }
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


# --------------------------------------------------------------------- judge


def _judge_crash_state(
    program: LitmusProgram,
    snap: OutcomeSnapshot,
    recovered,
) -> Tuple[List[Dict[str, object]], int]:
    """Components (nvm, resume) against one crash-index snapshot."""
    failures: List[Dict[str, object]] = []
    checks = 0
    for addr in program.addrs:
        got = recovered.nvm_image.get(addr, 0)
        allowed = snap.allowed.get(addr, frozenset((0,)))
        checks += 1
        if got not in allowed:
            failures.append(
                {
                    "component": "nvm",
                    "addr": addr,
                    "got": got,
                    "allowed": sorted(allowed),
                }
            )
    for core in range(program.harts):
        expected = snap.committed_region.get(core)
        resume = (
            recovered.resumes[core] if core < len(recovered.resumes) else None
        )
        got_region = resume.region_id if resume is not None else None
        checks += 1
        if expected is None:
            if resume is not None:
                failures.append(
                    {
                        "component": "resume",
                        "core": core,
                        "got": got_region,
                        "allowed": ["cold"],
                    }
                )
        elif got_region != expected:
            failures.append(
                {
                    "component": "resume",
                    "core": core,
                    "got": got_region,
                    "allowed": [expected],
                }
            )
    return failures, checks


def _judge_final_state(
    program: LitmusProgram,
    snap: OutcomeSnapshot,
    mw_addrs,
    finals,
    golden_data,
    final_image,
) -> Tuple[List[Dict[str, object]], int]:
    """Component (final) after resume-and-finish."""
    failures: List[Dict[str, object]] = []
    checks = 0
    for addr in program.addrs:
        got = final_image.get(addr, 0)
        checks += 1
        if addr in mw_addrs:
            # Any hart's final store may win the re-raced word; if no
            # post-resume store hits it, the recovered value stands.
            allowed = set(finals.get(addr, {}).values())
            allowed |= snap.allowed.get(addr, frozenset((0,)))
            if got not in allowed:
                failures.append(
                    {
                        "component": "final",
                        "addr": addr,
                        "got": got,
                        "allowed": sorted(allowed),
                    }
                )
        else:
            expected = golden_data.get(addr, 0)
            if got != expected:
                failures.append(
                    {
                        "component": "final",
                        "addr": addr,
                        "got": got,
                        "allowed": [expected],
                    }
                )
    return failures, checks


def _judge_point(
    program: LitmusProgram,
    k: int,
    snap: OutcomeSnapshot,
    state,
    mw_addrs,
    finals,
    golden_data,
    mutations,
    max_steps: int,
) -> Tuple[List[Dict[str, object]], int]:
    """Recover + judge one captured crash state end to end."""
    from repro.arch.recovery import RecoveryError, recover, resume_and_finish
    from repro.fault.oracle import data_image
    from repro.isa.machine import MachineError

    try:
        recovered = recover(
            state, program.module, strict=False, mutations=mutations
        )
    except RecoveryError as exc:
        return (
            [{"component": "recovery", "error": type(exc).__name__, "detail": str(exc)}],
            1,
        )
    failures, checks = _judge_crash_state(program, snap, recovered)
    try:
        machine = resume_and_finish(
            recovered,
            program.module,
            program.spawns,
            quantum=program.quantum,
            max_steps=max_steps,
        )
    except (RecoveryError, MachineError) as exc:
        failures.append(
            {"component": "resume-run", "error": type(exc).__name__, "detail": str(exc)}
        )
        return failures, checks + 1
    final_failures, final_checks = _judge_final_state(
        program, snap, mw_addrs, finals, golden_data, data_image(machine)
    )
    return failures + final_failures, checks + final_checks


# --------------------------------------------------------------------- matrix


def _direct_capture(program: LitmusProgram, k: int, config, mutations):
    """Interpreted (non-replay) crash capture with the same planted
    mutations — the witness-confirmation path.  Returns
    ``(state, order_kinds)``: the captured persistent domain and any
    reference-automaton violation kinds flagged on the way there."""
    from repro.arch.crash import CrashPlan, run_built_until_crash
    from repro.arch.system import build_system
    from repro.check.checker import PersistencyChecker

    machine, system = build_system(
        program.module,
        program.spawns,
        params=config.params,
        threshold=config.threshold,
        quantum=config.quantum,
        mutations=mutations,
    )
    checker = PersistencyChecker.attach(system) if config.check else None
    state = run_built_until_crash(
        machine,
        system,
        CrashPlan(k),
        max_steps=config.max_steps,
        extra_observer=checker,
    )
    if checker is not None and state is not None:
        checker.check_crash_state(state)
    kinds = (
        [v.kind for v in checker.report.violations] if checker is not None else []
    )
    return state, kinds


def run_litmus_program(
    program: LitmusProgram,
    mutations=None,
    threshold: int = 32,
    params=None,
    cache="default",
    stop_on_forbidden: bool = False,
    check: bool = True,
    max_steps: int = 2_000_000,
) -> LitmusVerdict:
    """Crash ``program`` at every observer event and judge every outcome.

    With ``check`` (the default) the reference automaton rides along the
    replay and its violations judge a fourth, *order* component — drain
    reorderings of committed values are value-invisible to single-crash
    recovery (every permutation of committed redo lands on the same
    word), so only the automaton can flag them (``reorder_phase2``).
    """
    from repro.deps import UsageProbe, deps_token, touch
    from repro.sweep.cache import resolve_cache

    touch("litmus")
    if params is None:
        params = litmus_params()
    fingerprint = verdict_fingerprint(
        program, threshold, params, mutations, check=check
    )
    store = resolve_cache(cache)
    if store is not None:
        payload = store.get(fingerprint, kind="litmus")
        if payload is not None and payload.get("content_hash") == program.content_hash():
            return LitmusVerdict.from_payload(payload)

    started = time.perf_counter()
    with UsageProbe() as probe:
        from repro.fault.campaign import CampaignConfig
        from repro.trace.record import capture_trace
        from repro.trace.replay import TraceCampaignSource, golden_from_trace

        trace = capture_trace(
            program.module,
            program.spawns,
            quantum=program.quantum,
            max_steps=max_steps,
            meta={"litmus_seed": program.seed, "name": program.name},
        )
        snapshots = oracle_snapshots(trace)
        finals = per_core_last_writes(trace)
        mw_addrs = frozenset(multi_writer_addrs(trace))
        golden_data = golden_from_trace(trace).data
        config = CampaignConfig(
            threshold=threshold,
            quantum=program.quantum,
            params=params,
            check=check,
            max_steps=max_steps,
            replay=True,
        )
        # Mutations plant in the replayed *system* (pipeline bugs) and in
        # recovery below (recovery bugs) — each layer reads its own flags.
        source = TraceCampaignSource(trace, config, mutations=mutations)

        forbidden = 0
        checks = 0
        witness: Optional[LitmusWitness] = None
        for k in range(len(trace)):
            state, _machine, facade = source.capture_at(k)
            if state is None:
                break
            failures, point_checks = _judge_point(
                program, k, snapshots[k], state, mw_addrs, finals,
                golden_data, mutations, max_steps,
            )
            checks += point_checks
            if facade is not None and facade.report.violations:
                failures.append(
                    {
                        "component": "order",
                        "kinds": sorted(
                            {v.kind for v in facade.report.violations}
                        ),
                    }
                )
            if failures:
                forbidden += 1
                if witness is None:
                    witness = LitmusWitness(
                        name=program.name,
                        seed=program.seed,
                        event_index=k,
                        event=repr(trace.event(k)),
                        failures=failures,
                        mutations=tuple(sorted(mutations.active))
                        if mutations
                        else (),
                    )
                    # Confirm the minimized witness off the replay path:
                    # a direct (interpreted, same-mutations) run of the
                    # same crash point must agree.
                    direct_state, direct_kinds = _direct_capture(
                        program, k, config, mutations
                    )
                    if direct_state is not None:
                        direct_failures, _ = _judge_point(
                            program, k, snapshots[k], direct_state, mw_addrs,
                            finals, golden_data, mutations, max_steps,
                        )
                        witness.confirmed = bool(direct_failures or direct_kinds)
                if stop_on_forbidden:
                    break

    verdict = LitmusVerdict(
        name=program.name,
        seed=program.seed,
        content_hash=program.content_hash(),
        mutations=tuple(sorted(mutations.active)) if mutations else (),
        crash_points=len(trace),
        forbidden=forbidden,
        checks=checks,
        elapsed=time.perf_counter() - started,
        witness=witness,
        replay_rebuilds=source.rebuilds,
    )
    if store is not None and not stop_on_forbidden:
        payload = verdict.to_payload()
        payload["deps"] = deps_token(set(probe.subsystems()) | {"litmus"})
        store.put(fingerprint, payload, kind="litmus")
    return verdict


@dataclass
class LitmusMutantsResult:
    """Teeth report: the matrix against every planted protocol bug."""

    programs: int
    #: unmutated control: every program must show zero forbidden outcomes.
    control_forbidden: int
    #: mutant name -> caught by at least one program's matrix.
    detected: Dict[str, bool]
    witnesses: Dict[str, Dict[str, object]] = field(default_factory=dict)
    expected_misses: Tuple[str, ...] = EXPECTED_MISSES

    @property
    def detection_rate(self) -> Tuple[int, int]:
        return sum(self.detected.values()), len(self.detected)

    @property
    def ok(self) -> bool:
        caught, total = self.detection_rate
        missed = {m for m, hit in self.detected.items() if not hit}
        return (
            self.control_forbidden == 0
            and missed <= set(self.expected_misses)
            and caught >= total - len(self.expected_misses)
        )

    def to_payload(self) -> Dict[str, object]:
        return {
            "programs": self.programs,
            "control_forbidden": self.control_forbidden,
            "detected": dict(self.detected),
            "witnesses": dict(self.witnesses),
            "expected_misses": list(self.expected_misses),
            "detection_rate": list(self.detection_rate),
            "ok": self.ok,
        }


def run_litmus_mutants(
    programs: Sequence[LitmusProgram],
    mutants: Optional[Sequence[str]] = None,
    threshold: int = 32,
    params=None,
    cache="default",
) -> LitmusMutantsResult:
    """Unmutated control + one matrix sweep per planted protocol bug.

    Every sweep visits both drain regimes of :func:`param_points`
    (unless ``params`` pins one): the throttled point keeps
    merge/reorder windows open, the fast point lets corrupted drains
    reach recoverable state.  A mutant counts as detected when any
    (program, regime) matrix observes a forbidden outcome; the sweep
    short-circuits per mutant on the first (event-minimal, confirmed)
    witness.
    """
    from repro.arch.persistence import ProtocolMutations
    from repro.check.mutants import MUTANT_EXPECTATIONS

    if mutants is None:
        mutants = list(MUTANT_EXPECTATIONS)
    points = param_points() if params is None else (params,)
    control_forbidden = 0
    for program in programs:
        for point in points:
            verdict = run_litmus_program(
                program, mutations=None, threshold=threshold, params=point,
                cache=cache,
            )
            control_forbidden += verdict.forbidden

    detected: Dict[str, bool] = {}
    witnesses: Dict[str, Dict[str, object]] = {}
    for name in mutants:
        detected[name] = False
        for program in programs:
            for point in points:
                verdict = run_litmus_program(
                    program,
                    mutations=ProtocolMutations.single(name),
                    threshold=threshold,
                    params=point,
                    cache=None,  # short-circuited sweeps: don't cache partials
                    stop_on_forbidden=True,
                )
                if verdict.forbidden:
                    detected[name] = True
                    if verdict.witness is not None:
                        witnesses[name] = verdict.witness.to_payload()
                    break
            if detected[name]:
                break
    return LitmusMutantsResult(
        programs=len(programs),
        control_forbidden=control_forbidden,
        detected=detected,
        witnesses=witnesses,
    )
