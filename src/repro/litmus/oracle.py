"""The allowed-outcome oracle for region-level strict persistency.

Given a prefix of the architectural event stream, which post-crash NVM
values may recovery legally produce for each address?  Per address the
answer is the set of **per-core contributions**: recovery processes one
core at a time — committed redo in region order, then rollback of the
uncommitted tail via intact undo — so the surviving value is the
contribution of whichever core recovery happens to process last among
those touching the address.  Cross-core processing order is the
ambiguity (ROADMAP "checker under multicore interleavings"); the
*per-address linearisation* set is exactly:

* a core with an **open (uncommitted) store** to the address
  contributes the undo word of its first open store — its own redo (if
  any) is overwritten by its own rollback,
* a core with only **committed** stores contributes its last committed
  redo value,
* an address no core has touched stays at the **baseline** (pre-first
  -store) value.

The oracle consumes the same observer stream as the reference automaton
(:mod:`repro.check.model`) and mirrors its commit rule exactly — a
boundary commits iff the region has open stores, staged checkpoints, or
is the implicit spawn region (id ``-1``).  It needs no load values and
no machine, so a captured :class:`repro.trace.record.ExecTrace` can
drive it standalone (``system=None``) — the matrix builds one snapshot
per crash index from a single delivery pass.

This is deliberately *per-address*: cross-address correlations (core A
recovered-before-core-B for one word but after for another) are allowed
by the set, matching the per-address independence of the drain/recovery
pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.isa.trace import Observer


@dataclass
class OutcomeSnapshot:
    """Allowed post-crash outcomes after one event prefix."""

    #: addr -> the set of values recovery may leave in NVM.
    allowed: Dict[int, FrozenSet[int]]
    #: core -> region id of its last committed boundary (``None`` until
    #: the core's implicit spawn boundary has retired — only then is a
    #: cold restart a legal resume).
    committed_region: Dict[int, Optional[int]]

    def allows(self, addr: int, value: int, baseline: int = 0) -> bool:
        return value in self.allowed.get(addr, frozenset((baseline,)))


class _CoreState:
    __slots__ = ("open_first_old", "open_last", "staging", "committed_last", "committed_region")

    def __init__(self) -> None:
        #: addr -> undo word of the first open-region store (rollback target).
        self.open_first_old: Dict[int, int] = {}
        #: addr -> last value stored in the open region (redo-if-committed).
        self.open_last: Dict[int, int] = {}
        #: staged register checkpoints since the last emitted boundary.
        self.staging: Dict[int, int] = {}
        #: addr -> last committed redo value.
        self.committed_last: Dict[int, int] = {}
        self.committed_region: Optional[int] = None


class LitmusOracle(Observer):
    """Observer computing the allowed set incrementally, O(1) per event."""

    def __init__(self) -> None:
        self.cores: Dict[int, _CoreState] = {}
        #: addr -> pre-first-store value (the no-contribution outcome).
        self.baseline: Dict[int, int] = {}
        #: every data address any store has touched.
        self.touched: set = set()
        self.events = 0

    def _core(self, core: int) -> _CoreState:
        st = self.cores.get(core)
        if st is None:
            st = self.cores[core] = _CoreState()
        return st

    # ------------------------------------------------------------- events

    def on_retire(self, core, kind):
        self.events += 1

    def on_load(self, core, addr):
        self.events += 1

    def _store(self, core: int, addr: int, value: int, old: int) -> None:
        st = self._core(core)
        if addr not in self.baseline and addr not in self.touched:
            self.baseline[addr] = old
        self.touched.add(addr)
        st.open_first_old.setdefault(addr, old)
        st.open_last[addr] = value

    def on_store(self, core, addr, value, old):
        self._store(core, addr, value, old)
        self.events += 1

    def on_atomic(self, core, addr, value, old):
        self._store(core, addr, value, old)
        self.events += 1

    def on_ckpt(self, core, reg, value, addr):
        self._core(core).staging[addr] = value
        self.events += 1

    def on_boundary(self, core, region_id, continuation):
        st = self._core(core)
        # Mirror of repro.check.model.PersistencyModel.machine_boundary:
        # empty regions emit no delimiter and commit nothing.
        if st.open_last or st.staging or region_id == -1:
            st.committed_last.update(st.open_last)
            st.committed_region = region_id
            st.open_first_old = {}
            st.open_last = {}
            st.staging = {}
        self.events += 1

    def on_fence(self, core):
        self.events += 1

    def on_io(self, core, port, value):
        self.events += 1

    def on_halt(self, core):
        self.events += 1

    # ---------------------------------------------------------- snapshots

    def allowed_for(self, addr: int) -> FrozenSet[int]:
        """The allowed post-crash value set for one address, now."""
        contributions = set()
        for st in self.cores.values():
            if addr in st.open_first_old:
                contributions.add(st.open_first_old[addr])
            elif addr in st.committed_last:
                contributions.add(st.committed_last[addr])
        if not contributions:
            contributions.add(self.baseline.get(addr, 0))
        return frozenset(contributions)

    def snapshot(self) -> OutcomeSnapshot:
        return OutcomeSnapshot(
            allowed={addr: self.allowed_for(addr) for addr in self.touched},
            committed_region={
                core: st.committed_region for core, st in self.cores.items()
            },
        )


def oracle_snapshots(trace) -> List[OutcomeSnapshot]:
    """One :class:`OutcomeSnapshot` per crash index of ``trace``.

    The crash injector fires *before* delegating event ``k``, so a crash
    at index ``k`` reflects events ``[0, k)`` — ``snapshots[k]`` is the
    allowed set for that crash point, and ``snapshots[len(trace)]`` is
    the end-of-run set.
    """
    from repro.deps import touch

    touch("litmus")
    oracle = LitmusOracle()
    out = [oracle.snapshot()]
    for i in range(len(trace)):
        trace.deliver(oracle, start=i, stop=i + 1)
        out.append(oracle.snapshot())
    return out


def per_core_last_writes(trace) -> Dict[int, Dict[int, int]]:
    """``addr -> {core -> last value that core ever stores to addr}``.

    Straight-line litmus programs make the golden trace's per-core store
    order the program order, so these are the values each hart's *final*
    store to the address writes — the candidate winners of the
    post-resume race on a multi-writer word.
    """
    from repro.trace.record import K_ATOMIC, K_STORE

    last: Dict[int, Dict[int, int]] = {}
    kinds, cores = trace.kinds, trace.cores
    col_a, col_b = trace.a, trace.b
    for i in range(len(kinds)):
        k = kinds[i]
        if k == K_STORE or k == K_ATOMIC:
            last.setdefault(col_a[i], {})[cores[i]] = col_b[i]
    return last


def multi_writer_addrs(trace) -> Tuple[int, ...]:
    """Addresses stored by more than one core in ``trace``."""
    return tuple(
        sorted(
            addr
            for addr, per_core in per_core_last_writes(trace).items()
            if len(per_core) > 1
        )
    )
