"""Command-line litmus tooling: ``python -m repro litmus <mode>``.

Four modes::

    # Print generated programs (text + structural metadata):
    python -m repro litmus generate --seeds 0,1,2

    # Crash matrix: every program, a crash at every observer event,
    # every recovered state judged against the outcome oracle
    # (exit 1 on any forbidden outcome):
    python -m repro litmus run --seeds 0,1,2

    # Bounded-exhaustive interleaving exploration against the oracle
    # and the reference automaton (exit 1 on automaton violations):
    python -m repro litmus explore --seeds 0,1 --step-limit 4

    # Teeth: the matrix against every planted ProtocolMutation
    # (exit 1 unless detection meets the expected-miss budget):
    python -m repro litmus mutants --seeds 0,1,2,3

``run`` and ``mutants`` are the CI smoke commands (`litmus-smoke`).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.jsonout import add_json_arg, resolved_json_out, write_envelope

#: The pinned corpus seeds (tests/litmus/test_golden_corpus.py).
DEFAULT_SEEDS = (0, 1, 2, 3, 4, 5)


def _parse_seeds(raw: Optional[str], count: Optional[int]) -> List[int]:
    """Comma-separated seeds, each either an int or an a-b range."""
    if raw:
        seeds: List[int] = []
        for part in raw.split(","):
            part = part.strip()
            if not part:
                continue
            lo, dash, hi = part.partition("-")
            if dash and lo:
                seeds.extend(range(int(lo), int(hi) + 1))
            else:
                seeds.append(int(part))
        return seeds
    return list(range(count if count is not None else len(DEFAULT_SEEDS)))


def _generate(args, json_out) -> int:
    from repro.litmus.generate import litmus_corpus

    programs = litmus_corpus(args.seed_list)
    rows = [
        {
            "name": p.name,
            "seed": p.seed,
            "harts": p.harts,
            "regions": p.metadata.get("regions"),
            "instrs": p.instr_counts(),
            "shared_addrs": p.shared_addrs,
            "private_addrs": p.private_addrs,
            "content_hash": p.content_hash(),
        }
        for p in programs
    ]
    if json_out != "-":
        for p, row in zip(programs, rows):
            print(
                f"{p.name}: {row['harts']} harts, {row['regions']} regions, "
                f"instrs {row['instrs']}, hash {row['content_hash']}"
            )
            if args.text:
                print(p.text())
    if json_out:
        write_envelope(json_out, "litmus", {"mode": "generate", "programs": rows})
    return 0


def _run(args, json_out) -> int:
    from repro.litmus.generate import litmus_corpus
    from repro.litmus.matrix import run_litmus_program

    programs = litmus_corpus(args.seed_list)
    start = time.perf_counter()
    verdicts = [
        run_litmus_program(
            p,
            threshold=args.threshold,
            cache=None if args.no_cache else "default",
        )
        for p in programs
    ]
    wall = time.perf_counter() - start
    forbidden = sum(v.forbidden for v in verdicts)
    if json_out != "-":
        for v in verdicts:
            line = (
                f"{v.name}: {v.crash_points} crash points, {v.checks} checks, "
                f"{v.forbidden} forbidden"
                + (" [cached]" if v.cached else f" ({v.elapsed:.2f}s)")
            )
            print(line)
            if v.witness is not None:
                w = v.witness
                print(
                    f"  witness: event {w.event_index} ({w.event}), "
                    f"confirmed={w.confirmed}, failures={w.failures}"
                )
        print(
            f"total: {forbidden} forbidden across "
            f"{sum(v.crash_points for v in verdicts)} crash points "
            f"in {wall:.2f}s"
        )
    if json_out:
        write_envelope(
            json_out,
            "litmus",
            {
                "mode": "run",
                "threshold": args.threshold,
                "forbidden": forbidden,
                "wall_s": wall,
                "verdicts": [v.to_payload() for v in verdicts],
            },
        )
    return 1 if forbidden else 0


def _explore(args, json_out) -> int:
    from repro.litmus.explore import explore_program
    from repro.litmus.generate import litmus_corpus

    programs = litmus_corpus(args.seed_list)
    start = time.perf_counter()
    results = [
        explore_program(
            p,
            max_schedules=args.max_schedules,
            step_limit=args.step_limit,
            threshold=args.threshold,
        )
        for p in programs
    ]
    wall = time.perf_counter() - start
    violations = sum(r.pipeline_violations for r in results)
    if json_out != "-":
        for r in results:
            print(
                f"{r.name}: universe {r.schedule_universe} schedules, "
                f"ran {r.schedules_run} "
                f"({'exhaustive' if r.exhaustive else 'sampled'}), "
                f"{r.pipeline_schedules} through the pipeline checker, "
                f"{r.pipeline_violations} violations"
            )
        print(f"total: {violations} automaton violations in {wall:.2f}s")
    if json_out:
        write_envelope(
            json_out,
            "litmus",
            {
                "mode": "explore",
                "wall_s": wall,
                "violations": violations,
                "results": [
                    {
                        "name": r.name,
                        "seed": r.seed,
                        "schedule_universe": str(r.schedule_universe),
                        "schedules_run": r.schedules_run,
                        "exhaustive": r.exhaustive,
                        "step_limit": r.step_limit,
                        "pipeline_schedules": r.pipeline_schedules,
                        "pipeline_violations": r.pipeline_violations,
                        "allowed_sizes": {
                            str(addr): len(vals)
                            for addr, vals in sorted(r.allowed.items())
                        },
                    }
                    for r in results
                ],
            },
        )
    return 1 if violations else 0


def _mutants(args, json_out) -> int:
    from repro.litmus.generate import litmus_corpus
    from repro.litmus.matrix import run_litmus_mutants

    programs = litmus_corpus(args.seed_list)
    mutants = (
        [m.strip() for m in args.mutants.split(",") if m.strip()]
        if args.mutants
        else None
    )
    start = time.perf_counter()
    result = run_litmus_mutants(
        programs,
        mutants=mutants,
        threshold=args.threshold,
        cache=None if args.no_cache else "default",
    )
    wall = time.perf_counter() - start
    caught, total = result.detection_rate
    if json_out != "-":
        print(
            f"litmus mutants: control forbidden {result.control_forbidden}, "
            f"detected {caught}/{total} in {wall:.1f}s"
        )
        for name, hit in sorted(result.detected.items()):
            note = ""
            if not hit and name in result.expected_misses:
                note = "  (expected miss: needs regular-path writebacks)"
            witness = result.witnesses.get(name)
            detail = (
                f"  witness event {witness['event_index']}"
                f" confirmed={witness['confirmed']}"
                if witness
                else ""
            )
            print(f"  {name:24s} {'CAUGHT' if hit else 'missed'}{detail}{note}")
        print("OK" if result.ok else "DETECTION BELOW EXPECTATION")
    if json_out:
        payload = result.to_payload()
        payload["mode"] = "mutants"
        payload["wall_s"] = wall
        write_envelope(json_out, "litmus", payload)
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro litmus",
        description="Persistency litmus tests: generation, outcome "
        "oracles, bounded-exhaustive exploration, and the crash matrix",
    )
    parser.add_argument("mode", choices=("generate", "run", "explore", "mutants"))
    parser.add_argument(
        "--seeds",
        default=None,
        help="generator seeds: comma-separated ints and a-b ranges, "
        "e.g. 0,3,5-8 (default: the pinned corpus)",
    )
    parser.add_argument(
        "--count",
        type=int,
        default=None,
        help="shorthand for --seeds 0,1,...,count-1",
    )
    parser.add_argument("--threshold", type=int, default=32)
    parser.add_argument(
        "--text", action="store_true", help="generate: print program text"
    )
    parser.add_argument(
        "--max-schedules",
        type=int,
        default=200,
        help="explore: schedule budget before sampling kicks in",
    )
    parser.add_argument(
        "--step-limit",
        type=int,
        default=None,
        help="explore: per-hart instruction cap for true exhaustiveness",
    )
    parser.add_argument(
        "--mutants",
        default=None,
        help="mutants: comma-separated mutation names (default: all planted)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the litmus verdict cache",
    )
    add_json_arg(parser)
    args = parser.parse_args(argv)
    args.seed_list = _parse_seeds(args.seeds, args.count)
    json_out = resolved_json_out(args, prog="repro litmus")
    if args.mode == "generate":
        return _generate(args, json_out)
    if args.mode == "run":
        return _run(args, json_out)
    if args.mode == "explore":
        return _explore(args, json_out)
    return _mutants(args, json_out)


if __name__ == "__main__":
    print(
        "note: `python -m repro litmus ...` is the consolidated entry point",
        file=sys.stderr,
    )
    sys.exit(main())
