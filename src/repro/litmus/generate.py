"""Deterministic litmus-program generation.

One seed fixes one tiny multi-hart program.  The generator trades
expressiveness for *judgeability*: every structural choice below exists
so that the outcome oracle (:mod:`repro.litmus.oracle`) can compute the
exact allowed post-crash set and the execution matrix can judge every
recovered state against it with no false positives on the faithful
protocol.

Structural guarantees (load-bearing — tests pin them):

* **2–3 harts, straight-line, single entry block, terminated by
  ``ret``.**  No control flow means every schedule of the bounded
  explorer retires the same per-hart instruction counts, so the
  interleaving space is exactly the multiset permutations of those
  counts.
* **Stores write immediates to immediate addresses.**  No address
  arithmetic lives in registers, so recovery never has to reconstruct
  an address and the printed program re-parses bit-identically
  (``tests/ir/test_litmus_roundtrip.py``).
* **Every stored value is a unique tag** (hart/region/slot encoded), so
  allowed-set membership is discriminating: two different protocol
  states can never collide on a value by accident.
* **Shared addresses are written by several harts, private addresses by
  one**; hart 0 re-writes the same shared word in consecutive regions,
  which is the front-end merge window ``merge_across_regions`` needs.
* **An accumulator register is updated every region, stored to the
  hart's private word, and checkpointed (``ckpt``) before each
  boundary.**  The accumulator is the only register live across
  boundaries; post-crash resume must restore it from checkpoint
  storage, so a skipped/stale checkpoint flush surfaces as a wrong
  private-word value downstream (``skip_ckpt_flush`` teeth).
* **A padding tail of loads** after the last boundary pumps simulated
  time so back-end drains complete, giving the crash sweep points where
  boundaries are fully durable (``skip_pc_checkpoint`` teeth).

Programs deliberately use **no data-segment symbols**: addresses are
raw words above ``DATA_BASE`` and the pre-store baseline is the zero
word, so a parsed-back module needs no data re-allocation.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.ir import IRBuilder
from repro.ir.instructions import CheckpointStore, RegionBoundary
from repro.ir.module import DATA_BASE, Module
from repro.ir.printer import format_module
from repro.ir.values import Imm
from repro.ir.verifier import verify_module

#: Default hart scheduling quantum for litmus runs: small enough that
#: the round-robin interpreter genuinely interleaves the regions.
LITMUS_QUANTUM = 4

#: Loads appended after the final boundary: each retires a simulated
#: cycle, letting throttled back-end drains finish before the program
#: ends (crash points *after* full durability are part of the sweep).
_PAD_LOADS = 24

#: Address layout: shared words first, then one private word per hart,
#: 64-byte (cache-line) apart so no two litmus words alias a line.
_SHARED_SLOTS = 2
_STRIDE = 64


def shared_addr(slot: int) -> int:
    return DATA_BASE + slot * _STRIDE

def private_addr(hart: int) -> int:
    return DATA_BASE + (_SHARED_SLOTS + hart) * _STRIDE


def value_tag(hart: int, region: int, slot: int) -> int:
    """A globally unique store value: readable and collision-free."""
    return (hart + 1) * 10_000 + (region + 1) * 100 + slot


@dataclass
class LitmusProgram:
    """One generated litmus test, ready for any engine in the stack."""

    name: str
    seed: int
    module: Module
    spawns: List[Tuple[str, Tuple[int, ...]]]
    shared_addrs: List[int]
    private_addrs: List[int]
    quantum: int = LITMUS_QUANTUM
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def harts(self) -> int:
        return len(self.spawns)

    @property
    def addrs(self) -> List[int]:
        return self.shared_addrs + self.private_addrs

    def instr_counts(self) -> List[int]:
        """Per-hart instruction counts (straight-line ⇒ schedule-free)."""
        return [
            len(self.module.functions[name].entry.instrs)
            for name, _ in self.spawns
        ]

    def text(self) -> str:
        return format_module(self.module)

    def content_hash(self) -> str:
        """Content address of the program itself (text + spawn list)."""
        digest = hashlib.sha256()
        digest.update(self.text().encode())
        for name, args in self.spawns:
            digest.update(f"|{name}{tuple(args)}".encode())
        return digest.hexdigest()[:16]


def generate_program(seed: int, quantum: int = LITMUS_QUANTUM) -> LitmusProgram:
    """Deterministically generate one litmus program from ``seed``."""
    from repro.deps import touch

    touch("litmus")
    rng = random.Random(0xC0FFEE ^ (seed * 0x9E3779B9))
    harts = rng.choice((2, 2, 3))  # bias toward the classic 2-hart shape
    regions = rng.randint(2, 3)
    name = f"litmus-{seed}"
    builder = IRBuilder(name)
    shared = [shared_addr(s) for s in range(_SHARED_SLOTS)]
    private = [private_addr(h) for h in range(harts)]

    for h in range(harts):
        with builder.function(f"hart{h}") as f:
            acc = f.li(h + 1)
            for r in range(regions):
                slots: List[int] = []
                if h == 0:
                    # Same shared word in consecutive regions: the next
                    # region's store arrives while the previous entry
                    # may still sit undrained — the cross-region merge
                    # window the mutant matrix needs open.
                    slots.append(0)
                for _ in range(rng.randint(1, 2)):
                    slots.append(rng.randrange(_SHARED_SLOTS))
                for i, s in enumerate(slots):
                    # +10*i keeps repeated same-slot stores distinct, so
                    # a dropped merge is visible as a stale value.
                    f.store(Imm(value_tag(h, r, s) + 10 * i), Imm(shared[s]))
                acc = f.add(acc, value_tag(h, r, 90 + r), dst=acc)
                f.store(acc, Imm(private[h]))
                f.emit(CheckpointStore(acc))
                f.emit(RegionBoundary(r))
            # Post-boundary tail: acc-derived work whose correctness
            # depends on the checkpoint restored at resume.
            acc = f.add(acc, h + 7, dst=acc)
            f.store(acc, Imm(private[h]))
            for _ in range(_PAD_LOADS):
                f.load(Imm(shared[0]))
            f.ret()

    program = LitmusProgram(
        name=name,
        seed=seed,
        module=builder.module,
        spawns=[(f"hart{h}", ()) for h in range(harts)],
        shared_addrs=shared,
        private_addrs=private,
        quantum=quantum,
        metadata={"regions": regions, "harts": harts},
    )
    verify_module(program.module)
    return program


def litmus_corpus(
    seeds: Sequence[int], quantum: int = LITMUS_QUANTUM
) -> List[LitmusProgram]:
    """Generate one program per seed (the corpus helpers' entry point)."""
    return [generate_program(seed, quantum=quantum) for seed in seeds]
