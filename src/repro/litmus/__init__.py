"""Persistency litmus tests: tiny multi-core programs with outcome oracles.

Klimis & Donaldson (*Lost in Interpretation*, PAPERS.md) validate
persistency models by generating litmus tests with annotated
allowed/forbidden post-crash outcomes and comparing real behaviour
against the spec.  This package is that engine for the Capri stack:

* :mod:`repro.litmus.generate` — deterministic seeded generation of
  tiny multi-hart IR programs (2–3 harts, a handful of stores, persist
  region boundaries, shared/private address mixes) via
  :class:`repro.ir.IRBuilder`,
* :mod:`repro.litmus.oracle` — the allowed-outcome oracle: per-address
  post-crash value sets under region-level strict persistency (the
  cross-core permitted set the checker's single-writer sweep lacks),
* :mod:`repro.litmus.explore` — bounded-exhaustive enumeration of hart
  interleavings against the oracle and the :mod:`repro.check` reference
  automaton,
* :mod:`repro.litmus.matrix` — the execution matrix: every litmus
  program through the fault campaign (crash at every observer event,
  replay-accelerated via :mod:`repro.trace`), every recovered state
  judged against the allowed set, minimized witnesses on forbidden
  outcomes, verdicts cached in the :class:`repro.api.ResultCache`
  ``litmus`` namespace.

CLI: ``python -m repro litmus generate|run|explore|mutants``.
"""

from repro.litmus.generate import LitmusProgram, generate_program, litmus_corpus
from repro.litmus.oracle import LitmusOracle, OutcomeSnapshot
from repro.litmus.explore import ExploreResult, explore_program
from repro.litmus.matrix import (
    LitmusVerdict,
    LitmusWitness,
    run_litmus_mutants,
    run_litmus_program,
)

__all__ = [
    "LitmusProgram",
    "generate_program",
    "litmus_corpus",
    "LitmusOracle",
    "OutcomeSnapshot",
    "ExploreResult",
    "explore_program",
    "LitmusVerdict",
    "LitmusWitness",
    "run_litmus_program",
    "run_litmus_mutants",
]
