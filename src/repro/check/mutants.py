"""Planted-mutant validation: prove the checker catches protocol bugs.

A sanitizer that never fires is indistinguishable from one that cannot
fire.  Each mutant here plants exactly one protocol bug behind a
:class:`~repro.arch.persistence.ProtocolMutations` debug knob — in the
proxy pipelines, the writeback invalidation path, or the recovery
protocol — and :func:`run_mutant_matrix` demands that:

* the **unmutated** run of every matrix workload is violation-free
  (both online and across crash/recover probes), and
* **every** mutant is detected on at least one matrix workload, *with
  the taxonomy class the planted bug warrants* (a mutant "detected" as
  the wrong class is a mis-diagnosis, not a detection).

Persistence-path mutants are detected by the online checker riding a
normal run (a badly broken pipeline may deadlock its proxy buffers —
``drop_boundary_entry`` fills both buffers with nothing ever draining —
so :class:`~repro.arch.proxy.ProxyOverflowError` is tolerated and the
end-of-run :meth:`~repro.check.checker.PersistencyChecker.finalize`
still runs).  Recovery-path mutants cannot fire during forward
execution; they are detected by crashing at several points, recovering
with the mutation planted, and checking the recovered state against the
model's committed prefix.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.crash import (
    CrashInjector,
    CrashPlan,
    PowerFailure,
    run_built_until_crash,
)
from repro.arch.params import SimParams
from repro.arch.persistence import ProtocolMutations
from repro.arch.proxy import ProxyOverflowError
from repro.arch.recovery import RecoveryError, recover
from repro.arch.system import build_system
from repro.check.checker import PersistencyChecker
from repro.check.violations import (
    CORRUPT_UNDO,
    CheckReport,
    LOST_REDO,
    OUT_OF_ORDER_DRAIN,
    PREMATURE_PERSIST,
    STALE_BOUNDARY_PC,
    STALE_REDO_OVERWRITE,
    UNCOVERED_CKPT_SLOT,
    Violation,
)
from repro.compiler import CapriCompiler, OptConfig
from repro.isa.machine import MachineError
from repro.isa.trace import TeeObserver

#: mutant name -> taxonomy classes that count as *correct* detection.
#: Most bugs have exactly one honest diagnosis; the entries with two list
#: classes that are both faithful descriptions of the same planted bug
#: (e.g. a skipped recovery redo leaves either the stale pre-region value
#: — lost redo — or, if a dirty writeback already leaked the speculative
#: value, a premature persist).
MUTANT_EXPECTATIONS: Dict[str, Tuple[str, ...]] = {
    "skip_undo_log": (CORRUPT_UNDO,),
    "merge_across_regions": (PREMATURE_PERSIST,),
    "drop_boundary_entry": (LOST_REDO,),
    "reorder_phase2": (OUT_OF_ORDER_DRAIN,),
    "drain_past_boundary": (PREMATURE_PERSIST, OUT_OF_ORDER_DRAIN),
    "skip_pc_checkpoint": (STALE_BOUNDARY_PC,),
    "skip_ckpt_flush": (UNCOVERED_CKPT_SLOT,),
    "redo_writes_undo": (LOST_REDO,),
    "drop_invalidation": (STALE_REDO_OVERWRITE,),
    "invalidate_everything": (LOST_REDO,),
    "recovery_skip_redo": (LOST_REDO, PREMATURE_PERSIST),
    "recovery_stale_pc": (STALE_BOUNDARY_PC,),
}

#: Mutants that only act during recovery (need crash/recover probes).
RECOVERY_MUTANTS = ("recovery_skip_redo", "recovery_stale_pc")

#: Crash points for recovery probes, as fractions of the golden run's
#: observer-event count — spread so at least one lands with undrained
#: boundary entries in the buffers.
CRASH_FRACTIONS = (0.35, 0.55, 0.75, 0.9)

_MAX_STEPS = 50_000_000


def matrix_params() -> SimParams:
    """Simulation parameters for the mutant matrix.

    :meth:`SimParams.scaled` with every cache shrunk hard (the
    stale-read test sizes) so even short matrix runs evict dirty lines
    into NVM *while proxy entries are still in flight* — the
    regular-path writebacks the two invalidation mutants
    (``drop_invalidation``, ``invalidate_everything``) need in order to
    act at all.

    The write port is also throttled (``nvm_write_parallelism=8``): at
    the default 256-way parallelism phase-2 drain keeps pace with the
    core and committed entries leave the back-end within nanoseconds of
    their boundary, which closes the cross-region address-reuse windows
    (``merge_across_regions``) and the writeback-hits-live-entry window
    before they can open.  Throttled, the proxy FIFO runs tens of
    entries deep — the Section 5.2.2 backlog regime.
    """
    return SimParams.scaled().with_(
        l1_size_bytes=512,
        l2_size_bytes=1024,
        dram_cache_size_bytes=1024,
        nvm_write_parallelism=8,
    )


@dataclass
class MutantOutcome:
    """One mutant's detection result across the matrix workloads."""

    mutant: str
    expected: Tuple[str, ...]
    detected: bool = False
    #: workload the mutant was (first) detected on.
    workload: Optional[str] = None
    #: taxonomy classes observed across all attempted workloads.
    kinds: List[str] = field(default_factory=list)
    #: first violation matching the expectation (carries the witness).
    first: Optional[Violation] = None
    #: run error tolerated during the mutated run, if any.
    error: Optional[str] = None

    def format(self) -> str:
        mark = "DETECTED" if self.detected else "MISSED"
        got = ",".join(self.kinds) or "-"
        where = f" on {self.workload}" if self.workload else ""
        note = f" [{self.error}]" if self.error else ""
        return (
            f"{self.mutant:24s} {mark:8s}{where}  "
            f"expected {'|'.join(self.expected)}  got {got}{note}"
        )


@dataclass
class MutantMatrixResult:
    """Outcome of the full matrix."""

    workloads: Tuple[str, ...]
    outcomes: List[MutantOutcome]
    #: unmutated runs (online + crash/recover probes) per workload.
    baseline_reports: Dict[str, CheckReport] = field(default_factory=dict)
    wall_s: float = 0.0

    @property
    def baseline_ok(self) -> bool:
        return all(r.ok for r in self.baseline_reports.values())

    @property
    def all_detected(self) -> bool:
        return all(o.detected for o in self.outcomes)

    @property
    def ok(self) -> bool:
        return self.baseline_ok and self.all_detected

    def format(self) -> str:
        lines = []
        for name, report in sorted(self.baseline_reports.items()):
            lines.append(f"baseline {name:16s} {report.summary()}")
        for o in self.outcomes:
            lines.append(o.format())
        n = sum(o.detected for o in self.outcomes)
        lines.append(
            f"mutants detected: {n}/{len(self.outcomes)}; baseline "
            + ("clean" if self.baseline_ok else "VIOLATED")
            + f"; {self.wall_s:.1f}s"
        )
        return "\n".join(lines)


def _build_workload(name: str, scale: float, threshold: int = 256):
    from repro.workloads import get_workload

    workload = get_workload(name)
    module, spawns = workload.build(scale)
    config = OptConfig.licm().with_threshold(threshold)
    module = CapriCompiler(config).compile(module).module
    return module, spawns


def checked_run(
    module,
    spawns,
    params: SimParams,
    threshold: int,
    mutations: Optional[ProtocolMutations] = None,
    max_steps: int = _MAX_STEPS,
    trace=None,
) -> Tuple[PersistencyChecker, Optional[str]]:
    """One full checked run; returns (checker, tolerated-error).

    Never raises on a model violation — callers inspect the report.
    Pipeline deadlock (possible under mutation) and machine errors are
    tolerated and reported so :meth:`finalize` can still flag what the
    committed prefix lost.

    With a captured :class:`~repro.trace.record.ExecTrace` as ``trace``,
    the run replays the columns instead of re-interpreting — one
    functional capture serves all twelve mutants (mutations live in the
    simulated pipelines, never in the event stream).
    """
    error: Optional[str] = None
    if trace is not None:
        from repro.trace.replay import build_replay_system

        system = build_replay_system(
            trace, params=params, threshold=threshold, mutations=mutations
        )
        checker = PersistencyChecker.attach(system)
        try:
            trace.deliver(TeeObserver(checker, system), system=system)
            system.finish()
        except ProxyOverflowError as exc:
            error = f"{type(exc).__name__}: {exc}"
        checker.finalize(system)
        return checker, error
    machine, system = build_system(
        module, spawns, params=params, threshold=threshold, mutations=mutations
    )
    checker = PersistencyChecker.attach(system)
    try:
        machine.run(TeeObserver(checker, system), max_steps=max_steps)
        system.finish()
    except (ProxyOverflowError, MachineError) as exc:
        error = f"{type(exc).__name__}: {exc}"
    checker.finalize(system)
    return checker, error


def _recovery_probe(
    module,
    spawns,
    params: SimParams,
    threshold: int,
    at_event: int,
    mutations: Optional[ProtocolMutations],
    trace=None,
) -> Optional[PersistencyChecker]:
    """Crash at ``at_event``, recover (optionally mutated), check.

    Returns the checker (its report covers the online run up to the
    crash, the crash-state sweep for unmutated probes, and the
    recovered-state check), or ``None`` if the program finished before
    the crash point or recovery itself refused the state.  ``trace``
    replays the forward run from a capture (the forward protocol is
    always faithful here — recovery mutants act only in :func:`recover`,
    which still needs the module).
    """
    if trace is not None:
        from repro.trace.replay import build_replay_system

        system = build_replay_system(trace, params=params, threshold=threshold)
        checker = PersistencyChecker.attach(system)
        injector = CrashInjector(
            system, CrashPlan(at_event), target=TeeObserver(checker, system)
        )
        state = None
        try:
            trace.deliver(injector, system=system)
        except PowerFailure as pf:
            state = pf.state
    else:
        machine, system = build_system(
            module, spawns, params=params, threshold=threshold
        )
        checker = PersistencyChecker.attach(system)
        state = run_built_until_crash(
            machine, system, CrashPlan(at_event), extra_observer=checker
        )
    if state is None:
        return None
    if mutations is None:
        # Faithful probes also sweep the raw crash snapshot against the
        # model — the mutated ones skip it (their snapshot comes from the
        # faithful forward protocol and would add nothing).
        checker.check_crash_state(state)
    try:
        recovered = recover(state, module, strict=True, mutations=mutations)
    except RecoveryError:
        return None
    checker.check_recovered(recovered)
    return checker


def run_mutant_matrix(
    workloads: Sequence[str] = ("genome", "hot-writeback"),
    scale: float = 1.0,
    threshold: int = 32,
    params: Optional[SimParams] = None,
    mutants: Optional[Sequence[str]] = None,
    replay: bool = False,
) -> MutantMatrixResult:
    """Run every mutant against the matrix workloads.

    The default threshold (32) is deliberately small: frequent region
    boundaries put boundary entries *behind* data in the back-end buffer
    often, which is the window ``reorder_phase2`` and
    ``merge_across_regions`` need to act.

    ``replay=True`` captures each workload's event stream once
    (:mod:`repro.trace`) and replays it for the baseline, all
    persistence-path mutants, and every recovery probe's forward run —
    mutations are simulation-side, so one trace serves the whole matrix.
    """
    start = time.perf_counter()
    params = params if params is not None else matrix_params()
    names = tuple(mutants) if mutants is not None else tuple(MUTANT_EXPECTATIONS)
    for name in names:
        if name not in MUTANT_EXPECTATIONS:
            raise ValueError(f"unknown mutant {name!r}")

    built: Dict[str, tuple] = {}
    traces: Dict[str, object] = {}
    golden_events: Dict[str, int] = {}
    baseline_reports: Dict[str, CheckReport] = {}
    for wl in workloads:
        module, spawns = _build_workload(wl, scale, threshold)
        built[wl] = (module, spawns)
        if replay:
            from repro.trace.record import capture_trace

            traces[wl] = capture_trace(module, spawns, max_steps=_MAX_STEPS)
        checker, error = checked_run(
            module, spawns, params, threshold, trace=traces.get(wl)
        )
        if error is not None:
            raise RuntimeError(f"unmutated run of {wl!r} failed: {error}")
        report = checker.report
        golden_events[wl] = report.events
        # Fold the faithful crash/recover probes into the baseline report:
        # the unmutated protocol must survive every probe violation-free.
        for frac in CRASH_FRACTIONS:
            probe = _recovery_probe(
                module,
                spawns,
                params,
                threshold,
                int(report.events * frac),
                mutations=None,
                trace=traces.get(wl),
            )
            if probe is not None:
                for v in probe.report.violations:
                    report.add(v)
                report.suppressed += probe.report.suppressed
                report.checks += probe.report.checks
        baseline_reports[wl] = report

    outcomes: List[MutantOutcome] = []
    for name in names:
        outcome = MutantOutcome(mutant=name, expected=MUTANT_EXPECTATIONS[name])
        mutation = ProtocolMutations.single(name)
        for wl in workloads:
            module, spawns = built[wl]
            if name in RECOVERY_MUTANTS:
                reports: List[CheckReport] = []
                for frac in CRASH_FRACTIONS:
                    probe = _recovery_probe(
                        module,
                        spawns,
                        params,
                        threshold,
                        int(golden_events[wl] * frac),
                        mutations=mutation,
                        trace=traces.get(wl),
                    )
                    if probe is not None:
                        reports.append(probe.report)
            else:
                checker, error = checked_run(
                    module,
                    spawns,
                    params,
                    threshold,
                    mutations=mutation,
                    trace=traces.get(wl),
                )
                if error is not None:
                    outcome.error = error
                reports = [checker.report]
            for report in reports:
                for kind in report.kinds():
                    if kind not in outcome.kinds:
                        outcome.kinds.append(kind)
                if outcome.first is None:
                    for v in report.violations:
                        if v.kind in outcome.expected:
                            outcome.first = v
                            break
            if any(k in outcome.expected for k in outcome.kinds):
                outcome.detected = True
                outcome.workload = wl
                break
        outcomes.append(outcome)

    return MutantMatrixResult(
        workloads=tuple(workloads),
        outcomes=outcomes,
        baseline_reports=baseline_reports,
        wall_s=time.perf_counter() - start,
    )
