"""The reference automaton of region-level strict persistency.

The model consumes the *architectural* event stream (stores, checkpoint
stores, region boundaries — Section 5.1's ground truth) and derives,
per core, what the persistence hardware is *permitted* to do:

* which regions are **committed** (a boundary event whose region was
  non-empty — mirroring the Section 5.2.1 traffic optimisation: empty
  regions emit no delimiter and occupy no sequence number),
* the exact FIFO of proxy-buffer emissions each committed prefix
  implies (data entries with their undo/redo words, then the boundary
  with its staged checkpoints and continuation),
* which redo words a regular-path writeback has superseded (the
  Section 5.3.2 valid-bit axiom), and
* the set of NVM states the spec permits: *NVM must always be
  recoverable to the committed prefix* — committed redo in region
  order, uncommitted stores covered by intact undo.

Two regression-locked reproduction findings from DESIGN.md are axioms
here: a boundary drain must publish the durable PC checkpoint naming
that boundary (finding #1), and writeback invalidation must cover
in-flight entries so a delayed drain can never stale-out newer data
(finding #2, the dirty-migration scenario).

The proxy hooks (:class:`repro.check.checker.PersistencyChecker`
forwards them) are validated against this automaton in O(1) amortised
per event: every hook does dictionary/deque head work only; the
whole-state sweeps happen once per crash snapshot or at finalize.

Multicore: for addresses written by more than one core the commit
order across cores is ambiguous (two cores' committed redo for the
same word race in recovery order), so exact-value checks are
impossible.  First cut (PR 10, backed by the ``repro.litmus`` outcome
oracle): such addresses get a *membership* check instead — the
recovered value must come from :meth:`PersistencyModel.allowed_values`
(each touching core's committed-last redo, or its rollback target when
a region is open).  Addresses that took a regular-path writeback fall
back to the structural checks only (the writeback's interleaving with
per-core recovery passes is not modelled).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.arch.proxy import _continuation_key
from repro.check.violations import (
    CORRUPT_UNDO,
    LOST_REDO,
    OUT_OF_ORDER_DRAIN,
    PHANTOM_PERSIST,
    PREMATURE_PERSIST,
    STALE_BOUNDARY_PC,
    STALE_REDO_OVERWRITE,
    UNCOVERED_CKPT_SLOT,
)

#: (kind, detail, addr, seq) — the checker wraps these with core/event
#: index/witness.
Finding = Tuple[str, str, Optional[int], Optional[int]]

#: writers[addr] value for cross-core addresses (value checks skip them).
MULTI_WRITER = -2


class EntryMirror:
    """Expected state of one live proxy data entry."""

    __slots__ = ("seq", "addr", "undo", "redo", "valid")

    def __init__(self, seq: int, addr: int, undo: int, redo: int) -> None:
        self.seq = seq
        self.addr = addr
        self.undo = undo
        self.redo = redo
        self.valid = True


class BoundaryMirror:
    """Expected state of one live boundary entry."""

    __slots__ = ("seq", "region_id", "continuation_key", "ckpts")

    def __init__(
        self, seq: int, region_id: int, continuation_key: tuple, ckpts: Dict[int, int]
    ) -> None:
        self.seq = seq
        self.region_id = region_id
        self.continuation_key = continuation_key
        self.ckpts = ckpts


class RegionRecord:
    """One committed region (a boundary event that emitted)."""

    __slots__ = ("seq", "region_id", "continuation_key", "stores", "ckpts", "drained")

    def __init__(
        self,
        seq: int,
        region_id: int,
        continuation_key: tuple,
        stores: Dict[int, Tuple[int, int]],
        ckpts: Dict[int, int],
    ) -> None:
        self.seq = seq
        self.region_id = region_id
        self.continuation_key = continuation_key
        self.stores = stores  # addr -> (first undo, final redo)
        self.ckpts = ckpts
        self.drained = False


class CoreModel:
    """Per-core automaton state."""

    __slots__ = (
        "core",
        "next_seq",
        "open_stores",
        "staging",
        "committed",
        "emitted",
        "merge_map",
        "drained_boundaries",
        "last_drained",
        "committed_last",
    )

    def __init__(self, core: int) -> None:
        self.core = core
        #: sequence number the open region will take if it commits.
        self.next_seq = 0
        #: open-region stores: addr -> [first_old, last_old, last_value].
        self.open_stores: Dict[int, List[int]] = {}
        #: staged register checkpoints since the last emitted boundary.
        self.staging: Dict[int, int] = {}
        #: committed regions by sequence number.
        self.committed: Dict[int, RegionRecord] = {}
        #: expected proxy-buffer FIFO (creation order, undrained).
        self.emitted: Deque[Any] = deque()
        #: addr -> newest live mirror (the pipeline's merge candidate).
        self.merge_map: Dict[int, EntryMirror] = {}
        #: boundaries drained so far == the only seq allowed to drain.
        self.drained_boundaries = 0
        self.last_drained: Optional[RegionRecord] = None
        #: addr -> this core's latest *committed* redo value.
        self.committed_last: Dict[int, int] = {}


class PersistencyModel:
    """The whole-system automaton: per-core state + global value maps."""

    def __init__(self, stale_read_prevention: bool = True) -> None:
        self.prevention = stale_read_prevention
        self.cores: Dict[int, CoreModel] = {}
        #: addr -> value the committed prefix requires recovery to produce.
        self.committed_value: Dict[int, int] = {}
        #: addr -> pre-first-store (initial) value.
        self.baseline: Dict[int, int] = {}
        #: ckpt slot -> latest committed value.
        self.committed_ckpt: Dict[int, int] = {}
        #: addr -> writing core, or MULTI_WRITER.
        self.writers: Dict[int, int] = {}
        #: addrs that took a regular-path writeback (membership checks
        #: skip them — the writeback races the recovery passes).
        self.wb_addrs: set = set()
        self.checks = 0
        #: multi-writer membership checks performed (observability).
        self.multi_writer_checks = 0

    def core(self, core: int) -> CoreModel:
        cm = self.cores.get(core)
        if cm is None:
            cm = CoreModel(core)
            self.cores[core] = cm
        return cm

    # ---------------------------------------------------------------- machine events

    def machine_store(self, core: int, addr: int, value: int, old: int) -> None:
        """An architectural store (or atomic) retired on ``core``."""
        cm = self.core(core)
        w = self.writers.get(addr)
        if w is None:
            self.writers[addr] = core
        elif w != core:
            self.writers[addr] = MULTI_WRITER
        if addr not in self.baseline and addr not in self.committed_value:
            self.baseline[addr] = old
        rec = cm.open_stores.get(addr)
        if rec is None:
            cm.open_stores[addr] = [old, old, value]
        else:
            rec[1] = old
            rec[2] = value

    def machine_ckpt(self, core: int, slot_addr: int, value: int) -> None:
        self.core(core).staging[slot_addr] = value

    def machine_boundary(self, core: int, region_id: int, continuation: Any) -> None:
        """A region boundary retired; commit the open region if it emits."""
        cm = self.core(core)
        emit = bool(cm.open_stores) or bool(cm.staging) or region_id == -1
        if not emit:
            return
        seq = cm.next_seq
        record = RegionRecord(
            seq,
            region_id,
            _continuation_key(continuation),
            {a: (v[0], v[2]) for a, v in cm.open_stores.items()},
            dict(cm.staging),
        )
        cm.committed[seq] = record
        for a, (_, redo) in record.stores.items():
            self.committed_value[a] = redo
            cm.committed_last[a] = redo
        for slot, value in record.ckpts.items():
            self.committed_ckpt[slot] = value
        cm.emitted.append(
            BoundaryMirror(seq, region_id, record.continuation_key, record.ckpts)
        )
        cm.open_stores = {}
        cm.staging = {}
        cm.merge_map = {}
        cm.next_seq = seq + 1

    # ---------------------------------------------------------------- proxy hooks

    def entry_created(
        self, core: int, seq: int, addr: int, undo: int, redo: int
    ) -> List[Finding]:
        cm = self.core(core)
        self.checks += 1
        out: List[Finding] = []
        if seq != cm.next_seq:
            out.append((
                PREMATURE_PERSIST,
                f"data entry tagged region seq {seq}, open region is "
                f"{cm.next_seq}",
                addr,
                seq,
            ))
        rec = cm.open_stores.get(addr)
        if rec is None:
            out.append((
                PHANTOM_PERSIST,
                "proxy entry created with no architectural store behind it",
                addr,
                seq,
            ))
        else:
            if undo != rec[1]:
                out.append((
                    CORRUPT_UNDO,
                    f"entry undo {undo} != architectural pre-store value {rec[1]}",
                    addr,
                    seq,
                ))
            if redo != rec[2]:
                out.append((
                    LOST_REDO,
                    f"entry redo {redo} != stored value {rec[2]}",
                    addr,
                    seq,
                ))
        mirror = EntryMirror(seq, addr, undo if rec is None else rec[1], rec[2] if rec else redo)
        cm.emitted.append(mirror)
        cm.merge_map[addr] = mirror
        return out

    def entry_merged(
        self, core: int, seq: int, addr: int, redo: int
    ) -> List[Finding]:
        cm = self.core(core)
        self.checks += 1
        out: List[Finding] = []
        if seq != cm.next_seq:
            out.append((
                PREMATURE_PERSIST,
                f"store merged into region seq {seq} after that region "
                f"committed (open region is {cm.next_seq})",
                addr,
                seq,
            ))
            return out
        mirror = cm.merge_map.get(addr)
        rec = cm.open_stores.get(addr)
        if mirror is None or rec is None:
            out.append((
                PHANTOM_PERSIST,
                "merge reported for an address with no live entry",
                addr,
                seq,
            ))
            return out
        if redo != rec[2]:
            out.append((
                LOST_REDO,
                f"merged redo {redo} != stored value {rec[2]}",
                addr,
                seq,
            ))
        mirror.redo = rec[2]
        return out

    def _resync(self, cm: CoreModel, seq: int, addr: Optional[int]) -> None:
        """After an order violation, remove the drained item from the
        expected FIFO wherever it is, bounding cascade noise."""
        for i, item in enumerate(cm.emitted):
            if addr is None:
                if isinstance(item, BoundaryMirror) and item.seq == seq:
                    del cm.emitted[i]
                    return
            elif (
                isinstance(item, EntryMirror)
                and item.seq == seq
                and item.addr == addr
            ):
                del cm.emitted[i]
                return

    def redo_drained(
        self, core: int, seq: int, addr: int, value: int
    ) -> List[Finding]:
        cm = self.core(core)
        self.checks += 1
        out: List[Finding] = []
        head = cm.emitted[0] if cm.emitted else None
        mirror: Optional[EntryMirror] = None
        if (
            isinstance(head, EntryMirror)
            and head.seq == seq
            and head.addr == addr
        ):
            mirror = head
            cm.emitted.popleft()
        else:
            expect = (
                f"boundary seq {head.seq}"
                if isinstance(head, BoundaryMirror)
                else f"data seq {head.seq} addr {head.addr:#x}"
                if isinstance(head, EntryMirror)
                else "nothing"
            )
            out.append((
                OUT_OF_ORDER_DRAIN,
                f"drained data seq {seq} but creation order expects {expect}",
                addr,
                seq,
            ))
            for item in cm.emitted:
                if (
                    isinstance(item, EntryMirror)
                    and item.seq == seq
                    and item.addr == addr
                ):
                    mirror = item
                    break
            self._resync(cm, seq, addr)
        if seq != cm.drained_boundaries and not out:
            out.append((
                OUT_OF_ORDER_DRAIN,
                f"drained data of region seq {seq}; drain cursor is at "
                f"{cm.drained_boundaries}",
                addr,
                seq,
            ))
        if seq not in cm.committed:
            out.append((
                PREMATURE_PERSIST,
                f"redo of *uncommitted* region seq {seq} reached NVM "
                f"(value {value})",
                addr,
                seq,
            ))
            return out
        if mirror is None:
            out.append((
                PHANTOM_PERSIST,
                f"redo drain for an entry the model never saw (seq {seq})",
                addr,
                seq,
            ))
            return out
        if not mirror.valid and self.prevention:
            out.append((
                STALE_REDO_OVERWRITE,
                "redo word superseded by a regular-path writeback drained "
                "anyway (valid-bit should be unset)",
                addr,
                seq,
            ))
        elif value != mirror.redo:
            out.append((
                LOST_REDO,
                f"drained value {value} != committed redo {mirror.redo}"
                + (" (undo word drained?)" if value == mirror.undo else ""),
                addr,
                seq,
            ))
        return out

    def redo_skipped(self, core: int, seq: int, addr: int) -> List[Finding]:
        cm = self.core(core)
        self.checks += 1
        out: List[Finding] = []
        head = cm.emitted[0] if cm.emitted else None
        mirror: Optional[EntryMirror] = None
        if (
            isinstance(head, EntryMirror)
            and head.seq == seq
            and head.addr == addr
        ):
            mirror = head
            cm.emitted.popleft()
        else:
            for item in cm.emitted:
                if (
                    isinstance(item, EntryMirror)
                    and item.seq == seq
                    and item.addr == addr
                ):
                    mirror = item
                    break
            self._resync(cm, seq, addr)
        if mirror is None:
            return out
        if mirror.valid:
            out.append((
                LOST_REDO,
                f"valid committed redo (value {mirror.redo}) skipped at "
                "phase-2 drain",
                addr,
                seq,
            ))
        return out

    def boundary_drained(
        self,
        core: int,
        seq: int,
        region_id: int,
        continuation: Any,
        ckpts_written: Dict[int, int],
        pc_written: bool,
    ) -> List[Finding]:
        cm = self.core(core)
        self.checks += 1
        out: List[Finding] = []
        head = cm.emitted[0] if cm.emitted else None
        if isinstance(head, BoundaryMirror) and head.seq == seq:
            cm.emitted.popleft()
        else:
            out.append((
                OUT_OF_ORDER_DRAIN,
                f"boundary seq {seq} drained out of creation order",
                None,
                seq,
            ))
            self._resync(cm, seq, None)
        if seq != cm.drained_boundaries and not out:
            out.append((
                OUT_OF_ORDER_DRAIN,
                f"boundary seq {seq} drained; drain cursor is at "
                f"{cm.drained_boundaries}",
                None,
                seq,
            ))
        record = cm.committed.get(seq)
        if record is None:
            out.append((
                PHANTOM_PERSIST,
                f"boundary drained for a region the model never committed "
                f"(seq {seq})",
                None,
                seq,
            ))
            return out
        for slot, value in record.ckpts.items():
            got = ckpts_written.get(slot)
            if got is None:
                out.append((
                    UNCOVERED_CKPT_SLOT,
                    f"staged checkpoint slot {slot:#x} (value {value}) not "
                    "flushed at boundary drain",
                    slot,
                    seq,
                ))
            elif got != value:
                out.append((
                    UNCOVERED_CKPT_SLOT,
                    f"checkpoint slot {slot:#x} flushed with {got}, staged "
                    f"value was {value}",
                    slot,
                    seq,
                ))
        for slot in ckpts_written:
            if slot not in record.ckpts:
                out.append((
                    PHANTOM_PERSIST,
                    f"checkpoint slot {slot:#x} written at boundary drain "
                    "but never staged",
                    slot,
                    seq,
                ))
        if not pc_written:
            out.append((
                STALE_BOUNDARY_PC,
                f"boundary seq {seq} drained without publishing the durable "
                "PC checkpoint",
                None,
                seq,
            ))
        elif (
            _continuation_key(continuation) != record.continuation_key
            or region_id != record.region_id
        ):
            out.append((
                STALE_BOUNDARY_PC,
                f"durable PC checkpoint names region {region_id}, boundary "
                f"seq {seq} belongs to region {record.region_id}",
                None,
                seq,
            ))
        cm.drained_boundaries = max(cm.drained_boundaries, seq + 1)
        record.drained = True
        cm.last_drained = record
        return out

    def writeback(self, addr: int, value: int) -> None:
        """A dirty line word reached NVM via the regular path: with
        stale-read prevention on, every live redo word for ``addr`` is
        now superseded and must not drain (Section 5.3.2)."""
        self.wb_addrs.add(addr)
        if not self.prevention:
            return
        for cm in self.cores.values():
            mirror = cm.merge_map.get(addr)
            if mirror is not None:
                mirror.valid = False
            for item in cm.emitted:
                if isinstance(item, EntryMirror) and item.addr == addr:
                    item.valid = False

    # ---------------------------------------------------------------- whole-state checks

    def reference_recovery(self, nvm_image: Dict[int, int]) -> Dict[int, int]:
        """Apply the Section 5.4 protocol to ``nvm_image`` using the
        model's *expected* surviving entries: committed valid redo in
        order, then uncommitted undo in reverse."""
        image = dict(nvm_image)
        for cm in self.cores.values():
            tail: List[EntryMirror] = []
            for item in cm.emitted:
                if isinstance(item, EntryMirror):
                    if item.seq in cm.committed:
                        if item.valid:
                            image[item.addr] = item.redo
                    else:
                        tail.append(item)
                elif isinstance(item, BoundaryMirror):
                    record = cm.committed.get(item.seq)
                    if record is not None:
                        for slot, value in record.ckpts.items():
                            image[slot] = value
            for item in reversed(tail):
                image[item.addr] = item.undo
        return image

    def expected_value(self, addr: int) -> int:
        """The value recovery must produce for ``addr``."""
        if addr in self.committed_value:
            return self.committed_value[addr]
        return self.baseline.get(addr, 0)

    def single_writer_addrs(self) -> List[int]:
        return [
            addr
            for addr, w in self.writers.items()
            if w != MULTI_WRITER
        ]

    def multi_writer_addrs(self) -> List[int]:
        return [
            addr
            for addr, w in self.writers.items()
            if w == MULTI_WRITER
        ]

    def allowed_values(self, addr: int, include_rollback: bool = True) -> set:
        """The set of values region-level strict persistency permits
        recovery to leave at a multi-writer ``addr`` (the same
        contribution rule as the :mod:`repro.litmus` outcome oracle).

        Each core that touched the word contributes exactly one value:
        its rollback target if it has an open (uncommitted) store and
        ``include_rollback`` is true — recovery undoes the open tail to
        that word's pre-region value — otherwise its latest committed
        redo.  Recovery applies the touching cores in *some* order, so
        the final word is the last-processed core's contribution; which
        core wins is the ambiguity, the candidate set is not.  A word
        no committed/open store covers stays at its baseline.  With
        ``include_rollback=False`` (finalize: nothing is open or
        pending) only committed-last values contribute.
        """
        out: set = set()
        for cm in self.cores.values():
            rec = cm.open_stores.get(addr)
            if include_rollback and rec is not None:
                out.add(rec[0])
            elif addr in cm.committed_last:
                out.add(cm.committed_last[addr])
        if not out:
            out.add(self.baseline.get(addr, 0))
        return out
