"""Violation taxonomy and structured reports for the persistency checker.

Every divergence the checker can detect maps to one of eight taxonomy
classes, chosen so each class names the *protocol rule* that broke
rather than the symptom:

==========================  ==================================================
class                       the broken rule
==========================  ==================================================
``premature-persist``       data of an uncommitted region reached NVM, or a
                            committed region was retroactively edited
``lost-redo``               a committed region's redo word will never become
                            durable (skipped, dropped, or wrong value)
``out-of-order-drain``      phase-2 drain violated region order (Section
                            5.2.2's boundary-ordered drain)
``stale-boundary-pc``       the durable PC checkpoint does not name the last
                            drained boundary (DESIGN.md finding #1 as an
                            axiom)
``uncovered-ckpt-slot``     a committed region's staged register checkpoint
                            was not flushed at boundary drain
``corrupt-undo``            a data entry's undo word differs from the
                            architectural pre-store value
``stale-redo-overwrite``    a redo word invalidated by a regular-path
                            writeback drained anyway (Section 5.3.2's
                            valid-bit axiom)
``phantom-persist``         persistent state appeared that no architectural
                            event explains
==========================  ==================================================

Reports carry the observer event index at detection time and a
*minimized witness window* — the recent-event ring filtered down to the
violating core/address, the same greedy drop-what-is-irrelevant style
:func:`repro.fault.oracle.minimize_failure` uses for failing sweep
points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

PREMATURE_PERSIST = "premature-persist"
LOST_REDO = "lost-redo"
OUT_OF_ORDER_DRAIN = "out-of-order-drain"
STALE_BOUNDARY_PC = "stale-boundary-pc"
UNCOVERED_CKPT_SLOT = "uncovered-ckpt-slot"
CORRUPT_UNDO = "corrupt-undo"
STALE_REDO_OVERWRITE = "stale-redo-overwrite"
PHANTOM_PERSIST = "phantom-persist"

ALL_KINDS = (
    PREMATURE_PERSIST,
    LOST_REDO,
    OUT_OF_ORDER_DRAIN,
    STALE_BOUNDARY_PC,
    UNCOVERED_CKPT_SLOT,
    CORRUPT_UNDO,
    STALE_REDO_OVERWRITE,
    PHANTOM_PERSIST,
)

#: A witness event: (tag, core, *payload) — tags are the machine-event
#: names plus the proxy-hook names ("entry", "merge", "drain", "skip",
#: "boundary-drain", "writeback").
WitnessEvent = Tuple


@dataclass
class Violation:
    """One detected persistency-model violation."""

    kind: str
    core: int
    detail: str
    event_index: int
    addr: Optional[int] = None
    seq: Optional[int] = None
    witness: List[WitnessEvent] = field(default_factory=list)

    def format(self) -> str:
        loc = f"core {self.core}"
        if self.seq is not None:
            loc += f" seq {self.seq}"
        if self.addr is not None:
            loc += f" addr {self.addr:#x}"
        lines = [
            f"[{self.kind}] event {self.event_index} ({loc}): {self.detail}"
        ]
        if self.witness:
            lines.append(f"  witness ({len(self.witness)} events):")
            for ev in self.witness:
                lines.append(f"    {ev!r}")
        return "\n".join(lines)


class PersistencyViolationError(Exception):
    """A run (or crash state) violated the region-persistency model."""

    def __init__(self, report: "CheckReport") -> None:
        super().__init__(report.summary())
        self.report = report


#: Hard cap on recorded violations — a badly mutated run can violate on
#: every drain; the first few witnesses carry all the signal.
_MAX_VIOLATIONS = 64


@dataclass
class CheckReport:
    """Everything one checked run produced."""

    violations: List[Violation] = field(default_factory=list)
    #: observer events seen (the crash-index universe).
    events: int = 0
    #: individual model comparisons performed.
    checks: int = 0
    #: violations dropped past the cap.
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations and not self.suppressed

    def kinds(self) -> List[str]:
        seen: List[str] = []
        for v in self.violations:
            if v.kind not in seen:
                seen.append(v.kind)
        return seen

    def add(self, violation: Violation) -> None:
        if len(self.violations) >= _MAX_VIOLATIONS:
            self.suppressed += 1
            return
        self.violations.append(violation)

    def raise_if_violated(self) -> None:
        if not self.ok:
            raise PersistencyViolationError(self)

    def summary(self) -> str:
        if self.ok:
            return (
                f"persistency check OK — {self.events} events, "
                f"{self.checks} checks, 0 violations"
            )
        counts: dict = {}
        for v in self.violations:
            counts[v.kind] = counts.get(v.kind, 0) + 1
        parts = [f"{k}×{n}" for k, n in sorted(counts.items())]
        extra = f" (+{self.suppressed} suppressed)" if self.suppressed else ""
        first = self.violations[0]
        return (
            f"persistency check FAILED — {len(self.violations)} violations"
            f"{extra} [{', '.join(parts)}]; first: [{first.kind}] "
            f"event {first.event_index}: {first.detail}"
        )

    def format(self, limit: int = 8) -> str:
        lines = [self.summary()]
        for v in self.violations[:limit]:
            lines.append(v.format())
        if len(self.violations) > limit:
            lines.append(f"  … {len(self.violations) - limit} more")
        return "\n".join(lines)


def minimize_witness(
    window: Iterable[WitnessEvent],
    core: Optional[int] = None,
    addr: Optional[int] = None,
    max_events: int = 12,
) -> List[WitnessEvent]:
    """Shrink a recent-event window to a minimal witness.

    Greedy relevance filter in the spirit of the fault campaign's
    :func:`~repro.fault.oracle.minimize_failure`: drop everything that
    names neither the violating core nor the violating address; if that
    kills the whole window (the violation is global), fall back to the
    most recent events.  Always bounded by ``max_events`` (newest kept).
    """
    window = list(window)

    def relevant(ev: WitnessEvent) -> bool:
        if core is not None and len(ev) > 1 and ev[1] == core:
            return True
        if addr is not None and addr in ev[2:]:
            return True
        return core is None and addr is None

    kept = [ev for ev in window if relevant(ev)]
    if not kept:
        kept = window
    return kept[-max_events:]
