"""Online persistency-model checking (the ``repro.check`` subsystem).

A shadow-state sanitizer for the Capri persistence protocol: a reference
automaton (:mod:`~repro.check.model`) consumes the architectural event
stream and derives the set of NVM states region-level persistency
permits; the checker (:mod:`~repro.check.checker`) rides any run as an
observer + persistence-engine watcher and flags every divergence with a
taxonomy class and a minimized witness window
(:mod:`~repro.check.violations`).  Planted protocol mutants
(:mod:`~repro.check.mutants`) prove the sanitizer actually fires.

Entry points:

* ``run_workload(..., check=True)`` / ``RunSpec(check=True)`` — sanitize
  any normal run.
* ``CampaignConfig(check=True)`` — the fault campaign's second oracle.
* ``python -m repro check`` — CLI: per-workload sanitized runs and the
  ``--mutants`` validation matrix.
"""

from repro.check.checker import PersistencyChecker
from repro.check.mutants import (
    MUTANT_EXPECTATIONS,
    MutantMatrixResult,
    MutantOutcome,
    run_mutant_matrix,
)
from repro.check.violations import (
    ALL_KINDS,
    CORRUPT_UNDO,
    CheckReport,
    LOST_REDO,
    OUT_OF_ORDER_DRAIN,
    PHANTOM_PERSIST,
    PREMATURE_PERSIST,
    PersistencyViolationError,
    STALE_BOUNDARY_PC,
    STALE_REDO_OVERWRITE,
    UNCOVERED_CKPT_SLOT,
    Violation,
)

__all__ = [
    "PersistencyChecker",
    "PersistencyViolationError",
    "CheckReport",
    "Violation",
    "ALL_KINDS",
    "PREMATURE_PERSIST",
    "LOST_REDO",
    "OUT_OF_ORDER_DRAIN",
    "STALE_BOUNDARY_PC",
    "UNCOVERED_CKPT_SLOT",
    "CORRUPT_UNDO",
    "STALE_REDO_OVERWRITE",
    "PHANTOM_PERSIST",
    "MUTANT_EXPECTATIONS",
    "MutantOutcome",
    "MutantMatrixResult",
    "run_mutant_matrix",
]
