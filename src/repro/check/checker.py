"""The online persistency checker: shadow state + model comparison.

:class:`PersistencyChecker` plays two roles at once:

* It is a machine :class:`~repro.isa.trace.Observer` — it consumes the
  architectural event stream (the same stream the system consumes; tee
  it *before* the system with :class:`~repro.isa.trace.TeeObserver` so
  the model is already updated when the pipeline reacts).
* It is the persistence engine's **watcher** — the proxy pipelines
  report what they *actually did* (entry created/merged, redo
  drained/skipped, boundary drained, writeback arrived) and every hook
  is validated against the reference automaton in
  :mod:`repro.check.model`.

Each hook is O(1) amortised: deque-head pops, dict lookups, and a
bounded ring-buffer append.  Whole-state sweeps run only at explicit
checkpoints — :meth:`check_crash_state` against a captured
:class:`~repro.arch.crash.CrashState`, :meth:`check_recovered` against
a :class:`~repro.arch.recovery.RecoveredState`, and :meth:`finalize`
after the run's terminal drain.

Typical use::

    checker = PersistencyChecker.attach(system)   # registers watcher
    machine.run(TeeObserver(checker, system))
    system.finish()
    checker.finalize(system)
    checker.report.raise_if_violated()

or just ``run_workload(..., check=True)``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.check.model import MULTI_WRITER, BoundaryMirror, EntryMirror, PersistencyModel
from repro.check.violations import (
    CORRUPT_UNDO,
    CheckReport,
    LOST_REDO,
    OUT_OF_ORDER_DRAIN,
    PHANTOM_PERSIST,
    PREMATURE_PERSIST,
    STALE_BOUNDARY_PC,
    STALE_REDO_OVERWRITE,
    UNCOVERED_CKPT_SLOT,
    Violation,
    minimize_witness,
)
from repro.isa.trace import Observer

#: Witness ring size — enough to span a drain burst around a violation.
_RING = 48


class PersistencyChecker(Observer):
    """Shadow-state sanitizer for the Capri persistence protocol."""

    def __init__(self, stale_read_prevention: bool = True) -> None:
        self.model = PersistencyModel(stale_read_prevention)
        self.report = CheckReport()
        #: one tick per observer callback — the same event universe the
        #: crash injector and :class:`~repro.isa.trace.TickCountingObserver`
        #: count, so violation indices line up with crash plans.
        self.event_index = 0
        self._ring: Deque[tuple] = deque(maxlen=_RING)

    # ------------------------------------------------------------------ setup

    @classmethod
    def attach(cls, system) -> "PersistencyChecker":
        """Create a checker and register it as ``system``'s persistence
        watcher.  The caller still must tee the machine event stream to
        the checker (see module docstring)."""
        from repro.deps import touch

        touch("check")  # usage-probe dependency recording
        if system.persist is None:
            raise ValueError(
                "persistency checking requires a persistent system "
                "(persistence=True)"
            )
        checker = cls(stale_read_prevention=system.params.stale_read_prevention)
        system.persist.set_watcher(checker)
        return checker

    # ------------------------------------------------------------------ internals

    def _emit(
        self,
        findings,
        core: int,
        default_addr: Optional[int] = None,
    ) -> None:
        for kind, detail, addr, seq in findings:
            if addr is None:
                addr = default_addr
            self.report.add(
                Violation(
                    kind=kind,
                    core=core,
                    detail=detail,
                    event_index=self.event_index,
                    addr=addr,
                    seq=seq,
                    witness=minimize_witness(self._ring, core=core, addr=addr),
                )
            )

    def _witness(self, *ev) -> None:
        self._ring.append(ev)

    def _tick(self) -> None:
        self.event_index += 1
        self.report.events += 1

    # ------------------------------------------------------------------ machine observer

    def on_retire(self, core, kind):
        # Retires tick the event index (crash-plan universe) but are too
        # dense to be useful witness events.
        self._tick()

    def on_load(self, core, addr):
        self._tick()

    def on_store(self, core, addr, value, old):
        self._witness("store", core, addr, value, old)
        self.model.machine_store(core, addr, value, old)
        self._tick()

    def on_ckpt(self, core, reg, value, addr):
        self._witness("ckpt", core, addr, reg, value)
        self.model.machine_ckpt(core, addr, value)
        self._tick()

    def on_boundary(self, core, region_id, continuation):
        self._witness("boundary", core, region_id)
        self.model.machine_boundary(core, region_id, continuation)
        self._tick()

    def on_fence(self, core):
        self._tick()

    def on_atomic(self, core, addr, value, old):
        self._witness("atomic", core, addr, value, old)
        self.model.machine_store(core, addr, value, old)
        self._tick()

    def on_io(self, core, port, value):
        self._witness("io", core, port)
        self._tick()

    def on_halt(self, core):
        self._witness("halt", core)
        self._tick()

    # ------------------------------------------------------------------ persistence watcher

    def on_entry(self, core, seq, addr, undo, redo):
        self._witness("entry", core, addr, seq, undo, redo)
        self._emit(self.model.entry_created(core, seq, addr, undo, redo), core, addr)

    def on_merge(self, core, seq, addr, redo):
        self._witness("merge", core, addr, seq, redo)
        self._emit(self.model.entry_merged(core, seq, addr, redo), core, addr)

    def on_redo_drained(self, core, seq, addr, value):
        self._witness("drain", core, addr, seq, value)
        self._emit(self.model.redo_drained(core, seq, addr, value), core, addr)

    def on_redo_skipped(self, core, seq, addr):
        self._witness("skip", core, addr, seq)
        self._emit(self.model.redo_skipped(core, seq, addr), core, addr)

    def on_boundary_drained(
        self, core, seq, region_id, continuation, ckpts_written, pc_written
    ):
        self._witness("boundary-drain", core, seq, region_id)
        self._emit(
            self.model.boundary_drained(
                core, seq, region_id, continuation, ckpts_written, pc_written
            ),
            core,
        )

    def on_writeback(self, addr, value):
        self._witness("writeback", -1, addr, value)
        self.model.writeback(addr, value)

    # ------------------------------------------------------------------ whole-state checks

    def check_crash_state(self, state) -> None:
        """Structurally compare a captured :class:`CrashState` against the
        model's expected undrained entries, field by field, and run a
        reference recovery over the captured image."""
        from repro.arch.proxy import _continuation_key

        model = self.model
        for core in range(state.num_cores):
            cm = model.cores.get(core)
            expected: List[Any] = list(cm.emitted) if cm is not None else []
            actual = state.core_entries[core]
            for i in range(min(len(expected), len(actual))):
                self._compare_entry(core, i, expected[i], actual[i])
            for item in expected[len(actual):]:
                if isinstance(item, EntryMirror):
                    if item.seq in (cm.committed if cm else {}):
                        self._crash_violation(
                            LOST_REDO,
                            core,
                            f"committed redo for addr {item.addr:#x} (seq "
                            f"{item.seq}) missing from surviving buffers",
                            addr=item.addr,
                            seq=item.seq,
                        )
                else:
                    self._crash_violation(
                        LOST_REDO,
                        core,
                        f"committed boundary seq {item.seq} missing from "
                        "surviving buffers",
                        seq=item.seq,
                    )
            for entry in actual[len(expected):]:
                self._crash_violation(
                    PHANTOM_PERSIST,
                    core,
                    f"surviving {'boundary' if entry.is_boundary else 'data'} "
                    f"entry (seq {entry.region_seq}) the model never saw",
                    addr=None if entry.is_boundary else entry.addr,
                    seq=entry.region_seq,
                )
            # Durable PC checkpoint must name the last *fully drained*
            # boundary (DESIGN.md finding #1).
            if cm is not None and cm.last_drained is not None:
                cont, region_id = state.pc_checkpoints.get(core, (None, None))
                rec = cm.last_drained
                if (
                    cont is None
                    or _continuation_key(cont) != rec.continuation_key
                    or region_id != rec.region_id
                ):
                    self._crash_violation(
                        STALE_BOUNDARY_PC,
                        core,
                        f"durable PC checkpoint names region {region_id}, "
                        f"last drained boundary was region {rec.region_id} "
                        f"(seq {rec.seq})",
                        seq=rec.seq,
                    )
        self._check_recoverability(state.nvm_image)
        self.model.checks += 1

    def _compare_entry(self, core: int, pos: int, expect, entry) -> None:
        from repro.arch.proxy import _continuation_key

        if isinstance(expect, EntryMirror):
            if entry.is_boundary:
                self._crash_violation(
                    OUT_OF_ORDER_DRAIN,
                    core,
                    f"buffer position {pos}: expected data entry (seq "
                    f"{expect.seq} addr {expect.addr:#x}), found boundary "
                    f"seq {entry.region_seq}",
                    seq=expect.seq,
                )
                return
            if entry.region_seq != expect.seq or entry.addr != expect.addr:
                self._crash_violation(
                    OUT_OF_ORDER_DRAIN,
                    core,
                    f"buffer position {pos}: expected seq {expect.seq} addr "
                    f"{expect.addr:#x}, found seq {entry.region_seq} addr "
                    f"{entry.addr:#x}",
                    addr=expect.addr,
                    seq=expect.seq,
                )
                return
            if entry.undo != expect.undo:
                self._crash_violation(
                    CORRUPT_UNDO,
                    core,
                    f"surviving undo {entry.undo} != architectural "
                    f"pre-store value {expect.undo}",
                    addr=entry.addr,
                    seq=entry.region_seq,
                )
            if entry.redo != expect.redo:
                self._crash_violation(
                    LOST_REDO,
                    core,
                    f"surviving redo {entry.redo} != committed value "
                    f"{expect.redo}",
                    addr=entry.addr,
                    seq=entry.region_seq,
                )
            if self.model.prevention and entry.redo_valid != expect.valid:
                if entry.redo_valid:
                    self._crash_violation(
                        STALE_REDO_OVERWRITE,
                        core,
                        f"redo for addr {entry.addr:#x} still valid; a "
                        "regular-path writeback superseded it",
                        addr=entry.addr,
                        seq=entry.region_seq,
                    )
                else:
                    self._crash_violation(
                        LOST_REDO,
                        core,
                        f"redo for addr {entry.addr:#x} invalidated with no "
                        "writeback to justify it",
                        addr=entry.addr,
                        seq=entry.region_seq,
                    )
        else:  # BoundaryMirror
            if not entry.is_boundary or entry.region_seq != expect.seq:
                self._crash_violation(
                    OUT_OF_ORDER_DRAIN,
                    core,
                    f"buffer position {pos}: expected boundary seq "
                    f"{expect.seq}, found "
                    + (
                        f"boundary seq {entry.region_seq}"
                        if entry.is_boundary
                        else f"data seq {entry.region_seq} addr {entry.addr:#x}"
                    ),
                    seq=expect.seq,
                )
                return
            if dict(entry.ckpts) != expect.ckpts:
                self._crash_violation(
                    UNCOVERED_CKPT_SLOT,
                    core,
                    f"boundary seq {expect.seq}: staged checkpoints "
                    f"{sorted(entry.ckpts)} != expected "
                    f"{sorted(expect.ckpts)}",
                    seq=expect.seq,
                )
            if (
                _continuation_key(entry.continuation) != expect.continuation_key
                or entry.region_id != expect.region_id
            ):
                self._crash_violation(
                    STALE_BOUNDARY_PC,
                    core,
                    f"boundary seq {expect.seq} carries continuation for "
                    f"region {entry.region_id}, expected region "
                    f"{expect.region_id}",
                    seq=expect.seq,
                )

    def _crash_violation(
        self,
        kind: str,
        core: int,
        detail: str,
        addr: Optional[int] = None,
        seq: Optional[int] = None,
    ) -> None:
        self.report.add(
            Violation(
                kind=kind,
                core=core,
                detail=detail,
                event_index=self.event_index,
                addr=addr,
                seq=seq,
                witness=minimize_witness(self._ring, core=core, addr=addr),
            )
        )

    def _check_recoverability(self, nvm_image: Dict[int, int]) -> None:
        """Reference-recover ``nvm_image`` with the model's expected
        surviving entries and require the committed prefix back.  Value
        checks are meaningful only with stale-read prevention on (the
        ablation knob deliberately lets NVM run stale).  Single-writer
        addresses get an exact check; multi-writer addresses a
        membership check against the per-core contribution set (the
        litmus outcome-oracle rule) — unless a regular-path writeback
        touched them, in which case only the structural checks apply."""
        if not self.model.prevention:
            return
        recovered = self.model.reference_recovery(nvm_image)
        for addr in self.model.single_writer_addrs():
            want = self.model.expected_value(addr)
            got = recovered.get(addr, 0)
            if got != want:
                core = self.model.writers.get(addr, -1)
                self._crash_violation(
                    LOST_REDO,
                    core if core != MULTI_WRITER else -1,
                    f"reference recovery of addr {addr:#x} yields {got}, "
                    f"committed prefix requires {want}",
                    addr=addr,
                )
        for addr in self.model.multi_writer_addrs():
            if addr in self.model.wb_addrs:
                continue
            allowed = self.model.allowed_values(addr)
            self.model.multi_writer_checks += 1
            got = recovered.get(addr, 0)
            if got not in allowed:
                self._crash_violation(
                    LOST_REDO,
                    -1,
                    f"reference recovery of multi-writer addr {addr:#x} "
                    f"yields {got}, allowed set is {sorted(allowed)}",
                    addr=addr,
                )

    def check_recovered(self, recovered) -> None:
        """Validate a :class:`RecoveredState` produced by the *real*
        recovery protocol against the committed prefix.  Only meaningful
        for clean recoveries (no injected corruption) — quarantined
        cores are exempt by design."""
        from repro.ir.module import is_ckpt_addr

        model = self.model
        quarantined = set(recovered.report.quarantined_cores)
        if model.prevention:
            for addr in model.single_writer_addrs():
                if is_ckpt_addr(addr):
                    continue
                core = model.writers.get(addr, -1)
                if core in quarantined:
                    continue
                want = model.expected_value(addr)
                got = recovered.nvm_image.get(addr, 0)
                if got != want:
                    # Distinguish "uncommitted value leaked" from "committed
                    # value lost": if the recovered value matches the last
                    # *speculative* store, recovery persisted uncommitted
                    # state.
                    cm = model.cores.get(core)
                    spec = (
                        cm.open_stores.get(addr, [None, None, None])[2]
                        if cm is not None
                        else None
                    )
                    kind = PREMATURE_PERSIST if got == spec and spec is not None else LOST_REDO
                    self._crash_violation(
                        kind,
                        core if core != MULTI_WRITER else -1,
                        f"recovered value of addr {addr:#x} is {got}, "
                        f"committed prefix requires {want}",
                        addr=addr,
                    )
            if not quarantined:
                # Multi-writer words: the recovered value must come from
                # some touching core's contribution (litmus oracle rule).
                # Quarantine drops whole cores from recovery, which
                # shrinks the contribution set in ways the model cannot
                # attribute per-address, so any quarantine skips these.
                for addr in model.multi_writer_addrs():
                    if is_ckpt_addr(addr) or addr in model.wb_addrs:
                        continue
                    allowed = model.allowed_values(addr)
                    model.multi_writer_checks += 1
                    got = recovered.nvm_image.get(addr, 0)
                    if got not in allowed:
                        self._crash_violation(
                            LOST_REDO,
                            -1,
                            f"recovered value of multi-writer addr "
                            f"{addr:#x} is {got}, allowed set is "
                            f"{sorted(allowed)}",
                            addr=addr,
                        )
        from repro.arch.proxy import _continuation_key

        for core, cm in model.cores.items():
            if core in quarantined or core >= len(recovered.resumes):
                continue
            committed = [r for r in cm.committed.values()]
            if not committed:
                continue
            last = max(committed, key=lambda r: r.seq)
            resume = recovered.resumes[core]
            if resume is None:
                self._crash_violation(
                    STALE_BOUNDARY_PC,
                    core,
                    f"core has committed region {last.region_id} (seq "
                    f"{last.seq}) but recovery restarts it cold",
                    seq=last.seq,
                )
                continue
            if (
                _continuation_key(resume.continuation) != last.continuation_key
                or resume.region_id != last.region_id
            ):
                self._crash_violation(
                    STALE_BOUNDARY_PC,
                    core,
                    f"recovery resumes core at region {resume.region_id}, "
                    f"last committed region is {last.region_id} (seq "
                    f"{last.seq})",
                    seq=last.seq,
                )
        self.model.checks += 1

    def finalize(self, system) -> None:
        """End-of-run check: after the terminal drain every committed
        region must be durable and the final NVM image must equal the
        committed prefix."""
        model = self.model
        for core, cm in model.cores.items():
            for item in cm.emitted:
                if isinstance(item, BoundaryMirror):
                    self._crash_violation(
                        LOST_REDO,
                        core,
                        f"committed region seq {item.seq} never became "
                        "durable (boundary entry still undrained at end "
                        "of run)",
                        seq=item.seq,
                    )
                elif item.seq in cm.committed:
                    self._crash_violation(
                        LOST_REDO,
                        core,
                        f"committed redo for addr {item.addr:#x} (seq "
                        f"{item.seq}) still undrained at end of run",
                        addr=item.addr,
                        seq=item.seq,
                    )
        leftover_committed = any(
            (isinstance(i, BoundaryMirror) and i.seq in cm.committed)
            or (isinstance(i, EntryMirror) and i.seq in cm.committed)
            for cm in model.cores.values()
            for i in cm.emitted
        )
        if model.prevention and not leftover_committed:
            image = system.nvm.image
            for addr in model.single_writer_addrs():
                want = model.expected_value(addr)
                got = image.get(addr, 0)
                if got != want:
                    core = model.writers.get(addr, -1)
                    self._crash_violation(
                        LOST_REDO,
                        core if core != MULTI_WRITER else -1,
                        f"final NVM value of addr {addr:#x} is {got}, "
                        f"committed prefix requires {want}",
                        addr=addr,
                    )
            for addr in model.multi_writer_addrs():
                if addr in model.wb_addrs:
                    continue
                # Nothing is open or pending after the terminal drain,
                # so only committed-last values contribute.
                allowed = model.allowed_values(addr, include_rollback=False)
                model.multi_writer_checks += 1
                got = image.get(addr, 0)
                if got not in allowed:
                    self._crash_violation(
                        LOST_REDO,
                        -1,
                        f"final NVM value of multi-writer addr {addr:#x} "
                        f"is {got}, allowed set is {sorted(allowed)}",
                        addr=addr,
                    )
            for slot, want in model.committed_ckpt.items():
                got = image.get(slot)
                if got != want:
                    self._crash_violation(
                        UNCOVERED_CKPT_SLOT,
                        -1,
                        f"final checkpoint slot {slot:#x} holds "
                        f"{got}, last committed value was {want}",
                        addr=slot,
                    )
        self.report.checks = model.checks
        self.model.checks += 1
