"""Command-line persistency checking.

Two modes:

**Sanitized runs** (default) — run workloads under the online checker
and report violations::

    # One workload at the paper threshold:
    python -m repro check --workload genome

    # Several workloads across a threshold sweep (the Figure 8 x-axis):
    python -m repro check --workload genome,ssca2 --thresholds 32,64,256

    # Every figure-suite workload:
    python -m repro check --all

**Mutant matrix** (``--mutants``) — planted-bug validation: every
protocol mutant must be detected with the taxonomy class it warrants,
and the unmutated runs (including crash/recover probes) must be
violation-free::

    python -m repro check --mutants
    python -m repro check --mutants --workloads genome,hot-writeback

Exit status is non-zero iff any sanitized run raised a violation (or
died), or any mutant went undetected / any matrix baseline was dirty.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.arch.params import SimParams
from repro.check.mutants import (
    MUTANT_EXPECTATIONS,
    _build_workload,
    checked_run,
    matrix_params,
    run_mutant_matrix,
)
from repro.jsonout import add_json_arg, resolved_json_out, write_envelope


def _parse_csv(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _sanitized(args, parser, json_out) -> int:
    from repro.workloads import workload_names

    if args.all:
        names = workload_names()
    elif args.workload:
        names = _parse_csv(args.workload)
    else:
        parser.error("sanitized mode needs --workload or --all")
    if args.thresholds:
        thresholds = [int(t) for t in _parse_csv(args.thresholds)]
    else:
        thresholds = [args.threshold]
    params = matrix_params() if args.matrix_params else SimParams.scaled()

    failures = 0
    records = []
    for name in names:
        for threshold in thresholds:
            start = time.perf_counter()
            try:
                module, spawns = _build_workload(name, args.scale, threshold)
            except KeyError as err:
                parser.error(str(err.args[0] if err.args else err))
            checker, error = checked_run(module, spawns, params, threshold)
            report = checker.report
            ok = report.ok and error is None
            wall = time.perf_counter() - start
            status = "clean" if ok else "VIOLATED"
            if json_out != "-":
                print(
                    f"{name:20s} t{threshold:<5d} {status:8s} "
                    f"{report.summary()}  ({wall:.1f}s)"
                    + (f"  [{error}]" if error else "")
                )
            records.append({
                "workload": name,
                "threshold": threshold,
                "ok": ok,
                "events": report.events,
                "checks": report.checks,
                "violations": len(report.violations),
                "violation_kinds": report.kinds(),
                "suppressed": report.suppressed,
                "wall_s": round(wall, 3),
                "error": error,
            })
            if not ok:
                failures += 1
                if json_out != "-":
                    print(report.format())
    verdict = "PASS" if failures == 0 else f"FAIL ({failures} run(s) violated)"
    if json_out != "-":
        print(f"sanitized runs: {len(names)} workload(s) x "
              f"{len(thresholds)} threshold(s) — {verdict}")
    if json_out:
        payload = {
            "mode": "sanitized",
            "verdict": verdict,
            "failures": failures,
            "events": sum(r["events"] for r in records),
            "checks": sum(r["checks"] for r in records),
            "runs": records,
        }
        write_envelope(json_out, "check", payload)
        if json_out != "-":
            print(f"checker stats written to {json_out}")
    return 0 if failures == 0 else 1


def _mutants(args, parser, json_out) -> int:
    workloads = _parse_csv(args.workloads)
    mutants = _parse_csv(args.mutant) if args.mutant else None
    try:
        result = run_mutant_matrix(
            workloads=workloads,
            scale=args.scale if args.scale is not None else 1.0,
            threshold=args.threshold,
            mutants=mutants,
            replay=args.replay,
        )
    except (KeyError, ValueError) as err:
        parser.error(str(err.args[0] if err.args else err))
    if json_out != "-":
        print(result.format())
    if json_out:
        payload = {
            "mode": "mutants",
            "ok": result.ok,
            "baseline_ok": result.baseline_ok,
            "all_detected": result.all_detected,
            "workloads": list(result.workloads),
            "wall_s": round(result.wall_s, 3),
            "baselines": {
                name: {
                    "ok": report.ok,
                    "events": report.events,
                    "checks": report.checks,
                    "violations": len(report.violations),
                }
                for name, report in sorted(result.baseline_reports.items())
            },
            "mutants": [
                {
                    "mutant": o.mutant,
                    "detected": o.detected,
                    "expected": list(o.expected),
                    "kinds": list(o.kinds),
                    "workload": o.workload,
                    "error": o.error,
                }
                for o in result.outcomes
            ],
        }
        write_envelope(json_out, "check", payload)
        if json_out != "-":
            print(f"checker stats written to {json_out}")
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro check",
        description="Online persistency-model checker (sanitized runs "
        "and planted-mutant validation)",
    )
    parser.add_argument(
        "--mutants",
        action="store_true",
        help="run the planted-mutant validation matrix instead of "
        "sanitized workload runs",
    )
    parser.add_argument(
        "--workload",
        help="comma-separated registry workloads to sanitize",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="sanitize every figure-suite workload",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale (default: each workload's registry default; "
        "1.0 in --mutants mode)",
    )
    parser.add_argument(
        "--threshold",
        type=int,
        default=None,
        help="region threshold (default: 256 sanitized, 32 for --mutants)",
    )
    parser.add_argument(
        "--thresholds",
        help="comma-separated threshold sweep (sanitized mode only)",
    )
    parser.add_argument(
        "--matrix-params",
        action="store_true",
        help="sanitize under the stress parameters of the mutant matrix "
        "(tiny caches, throttled NVM write port) instead of the paper "
        "configuration",
    )
    parser.add_argument(
        "--workloads",
        default="genome,hot-writeback",
        help="matrix workloads for --mutants (default: %(default)s)",
    )
    parser.add_argument(
        "--mutant",
        help="comma-separated mutant subset for --mutants "
        f"(known: {', '.join(MUTANT_EXPECTATIONS)})",
    )
    parser.add_argument(
        "--replay",
        action="store_true",
        help="drive the matrix from captured traces (repro.trace) — one "
        "functional capture per workload serves all mutants "
        "(--mutants mode only)",
    )
    add_json_arg(
        parser,
        legacy="--stats-json",
        help="write per-run checker statistics (events, checks, "
        "violations, wall time) to PATH as a schema-versioned envelope "
        "('-' for stdout)",
    )
    args = parser.parse_args(argv)
    json_out = resolved_json_out(args, prog="repro check")

    if args.mutants:
        if args.threshold is None:
            args.threshold = 32
        return _mutants(args, parser, json_out)
    if args.threshold is None:
        args.threshold = 256
    return _sanitized(args, parser, json_out)


if __name__ == "__main__":
    print(
        "note: `python -m repro check ...` is the consolidated entry point",
        file=sys.stderr,
    )
    sys.exit(main())
