"""Capri: compiler and architecture support for whole-system persistence.

A complete Python reproduction of Jeong, Zeng & Jung, HPDC 2022
(doi:10.1145/3502181.3531474).  Subpackages:

* :mod:`repro.ir` — the compiler IR substrate (CFG, dataflow, builder,
  parser/printer) standing in for LLVM,
* :mod:`repro.compiler` — the Capri passes: region formation under a
  store threshold, register-checkpoint insertion, speculative loop
  unrolling, optimal checkpoint pruning, checkpoint LICM, plus the
  static whole-system-persistence verifier and an inlining extension,
* :mod:`repro.isa` — the functional machine producing the event stream,
* :mod:`repro.arch` — the Capri architecture: caches, NVM, front/back-end
  proxy buffers, two-phase atomic stores with undo+redo logging,
  crash injection and the recovery protocol,
* :mod:`repro.workloads` — shape-matched stand-ins for SPEC CPU2017,
  STAMP and Splash-3,
* :mod:`repro.eval` — the evaluation harness regenerating every figure
  of the paper plus the extension analyses,
* :mod:`repro.api` — the public run API: the frozen :class:`RunSpec`
  interchange type, :class:`RunResult` envelopes, spec fingerprints,
* :mod:`repro.sweep` — the parallel sweep engine and its persistent
  content-addressed result cache (``python -m repro sweep``),
* :mod:`repro.fault` — crash-consistency fault-injection campaigns.

Start with README.md's sixty-second tour or ``examples/quickstart.py``;
``python -m repro`` lists the consolidated command-line entry points.
"""

__version__ = "1.1.0"
