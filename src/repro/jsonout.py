"""One machine-readable output convention for every CLI.

Every ``repro`` subcommand that can emit JSON does it through the same
``--json PATH`` flag (``-`` for stdout) and the same schema-versioned
envelope::

    {"schema": 1, "command": "<subcommand>", "data": {...}}

Consumers dispatch on ``command`` and version-check ``schema`` once,
instead of guessing at five ad-hoc layouts.  The older per-command flags
(``--stats-json``) remain as hidden deprecated aliases that warn once
per process and produce the *new* envelope — scripts keep working, but
they are told where to move.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Optional, Set

#: Bump when the envelope layout itself (not a command's data) changes.
ENVELOPE_SCHEMA = 1

_warned: Set[str] = set()


def envelope(command: str, data: Any) -> Dict[str, Any]:
    """The standard envelope around one command's payload."""
    return {"schema": ENVELOPE_SCHEMA, "command": command, "data": data}


def write_envelope(path: str, command: str, data: Any) -> Dict[str, Any]:
    """Serialise ``envelope(command, data)`` to ``path`` (``-`` = stdout).

    Returns the document (callers print their own confirmation line for
    file targets; stdout gets the JSON and nothing else).
    """
    doc = envelope(command, data)
    if path == "-":
        json.dump(doc, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
    return doc


def add_json_arg(
    parser: argparse.ArgumentParser,
    legacy: Optional[str] = None,
    help: str = "write the machine-readable envelope "
    '({"schema": N, "command": ..., "data": ...}) to PATH '
    "('-' for stdout)",
) -> None:
    """Register the unified ``--json`` flag (plus a hidden legacy alias).

    ``legacy`` names the command's old flag (e.g. ``--stats-json``); it
    keeps parsing but is suppressed from ``--help`` and warns once per
    process when used.
    """
    parser.add_argument(
        "--json", dest="json_out", metavar="PATH", default=None, help=help
    )
    if legacy:
        parser.add_argument(
            legacy,
            dest="json_out_legacy",
            metavar="PATH",
            default=None,
            help=argparse.SUPPRESS,
        )


def resolved_json_out(args: argparse.Namespace, prog: str) -> Optional[str]:
    """The requested output path, honouring the deprecated alias.

    ``--json`` wins when both are given.  The alias warns once per
    process per command, on stderr (never into a ``--json -`` stream).
    """
    path = getattr(args, "json_out", None)
    legacy = getattr(args, "json_out_legacy", None)
    if path is not None:
        return path
    if legacy is not None and prog not in _warned:
        _warned.add(prog)
        print(
            f"{prog}: --stats-json is deprecated; use --json "
            "(same path semantics, schema-versioned envelope)",
            file=sys.stderr,
        )
    return legacy
