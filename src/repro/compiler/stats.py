"""Region statistics for Figures 10 and 11.

The paper reports the *average number of instructions* per region
(Figure 10) and the *average number of stores including checkpoints* per
region (Figure 11).  Both are dynamic quantities: a loop region executing
a thousand times counts a thousand samples.  The
:class:`RegionStatsObserver` measures them directly from the machine's
event stream; :func:`static_region_stats` offers the cheaper static
approximation used for quick sanity checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.instructions import CheckpointStore, RegionBoundary
from repro.isa.trace import Observer


#: Cap on retained per-region samples (uniform reservoir) so long runs
#: keep bounded memory while percentiles stay representative.
_RESERVOIR = 4096


@dataclass
class RegionDynStats:
    """Aggregated dynamic region statistics, with length distributions.

    The paper's Figures 10/11 report means; the *distribution* is what
    motivates speculative unrolling (Section 4.3): most regions are much
    shorter than the threshold allows because of short loops.  Samples
    are kept in a uniform reservoir so percentiles are available without
    unbounded memory.
    """

    regions_executed: int = 0
    total_instructions: int = 0
    total_stores: int = 0
    #: Instructions retired outside any committed region tail (final stub).
    tail_instructions: int = 0
    #: Reservoir samples of (instructions, stores) per executed region.
    samples: List[tuple] = field(default_factory=list)

    def record(self, instructions: int, stores: int) -> None:
        self.regions_executed += 1
        self.total_instructions += instructions
        self.total_stores += stores
        if len(self.samples) < _RESERVOIR:
            self.samples.append((instructions, stores))
        else:
            # Deterministic systematic reservoir: replace a rotating slot
            # with decreasing probability (index-hash based, no RNG so
            # runs stay reproducible).
            slot = (self.regions_executed * 2654435761) % self.regions_executed
            if slot < _RESERVOIR:
                self.samples[slot] = (instructions, stores)

    @property
    def avg_instructions(self) -> float:
        """Average dynamic instructions per executed region (Figure 10)."""
        if self.regions_executed == 0:
            return 0.0
        return self.total_instructions / self.regions_executed

    @property
    def avg_stores(self) -> float:
        """Average dynamic stores incl. checkpoints per region (Figure 11)."""
        if self.regions_executed == 0:
            return 0.0
        return self.total_stores / self.regions_executed

    def percentile_instructions(self, q: float) -> float:
        """q-quantile (0..1) of region instruction counts."""
        return self._percentile(0, q)

    def percentile_stores(self, q: float) -> float:
        """q-quantile (0..1) of region store counts."""
        return self._percentile(1, q)

    def _percentile(self, idx: int, q: float) -> float:
        if not self.samples:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        values = sorted(s[idx] for s in self.samples)
        pos = q * (len(values) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(values) - 1)
        frac = pos - lo
        # lerp via lo + frac*(hi-lo): exact at frac==0/1 and never escapes
        # [values[lo], values[hi]] to float error, unlike the two-product
        # form values[lo]*(1-frac) + values[hi]*frac.
        return values[lo] + (values[hi] - values[lo]) * frac

    def histogram_instructions(self, bins: Sequence[int]) -> Dict[str, int]:
        """Counts of sampled regions per length bucket.

        ``bins`` are ascending upper bounds; a final unbounded bucket is
        added automatically.
        """
        labels = []
        lower = 0
        for b in bins:
            labels.append((f"{lower}-{b}", lower, b))
            lower = b + 1
        labels.append((f">{bins[-1]}", lower, None))
        out = {label: 0 for (label, _, _) in labels}
        for instructions, _ in self.samples:
            for label, lo, hi in labels:
                if hi is None or lo <= instructions <= hi:
                    if hi is None:
                        out[label] += 1
                        break
                    if instructions <= hi:
                        out[label] += 1
                        break
        return out


class RegionStatsObserver(Observer):
    """Counts per-region instruction and store totals from the event stream.

    A region's dynamic extent runs from one boundary event to the next on
    the same core.  Boundary instructions themselves are not counted inside
    the region (they delimit it), matching the paper's methodology of
    excluding boundary instructions from the simulated instruction budget.
    """

    def __init__(self) -> None:
        self.stats = RegionDynStats()
        # per-core in-flight counters: [instructions, stores, in_region]
        self._counts: Dict[int, List[int]] = {}

    def _core(self, core: int) -> List[int]:
        counters = self._counts.get(core)
        if counters is None:
            counters = [0, 0, 0]
            self._counts[core] = counters
        return counters

    def on_retire(self, core: int, kind: str) -> None:
        if kind != "RegionBoundary":
            self._core(core)[0] += 1

    def on_store(self, core: int, addr: int, value: int, old: int) -> None:
        self._core(core)[1] += 1

    def on_ckpt(self, core: int, reg: int, value: int, addr: int) -> None:
        self._core(core)[1] += 1

    def on_atomic(self, core: int, addr: int, value: int, old: int) -> None:
        self._core(core)[1] += 1

    def on_boundary(self, core: int, region_id: int, continuation) -> None:
        counters = self._core(core)
        if counters[2]:  # close the previous region
            self.stats.record(counters[0], counters[1])
        counters[0] = 0
        counters[1] = 0
        counters[2] = 1

    def on_halt(self, core: int) -> None:
        counters = self._core(core)
        if counters[2]:
            self.stats.record(counters[0], counters[1])
            counters[2] = 0
        else:
            self.stats.tail_instructions += counters[0]
        counters[0] = 0
        counters[1] = 0


@dataclass
class StaticRegionStats:
    """Static per-function region statistics."""

    num_regions: int
    num_checkpoints: int
    num_boundaries: int
    avg_static_instrs: float


def static_region_stats(func: Function) -> StaticRegionStats:
    """Static approximation: instructions per region entry block's subgraph.

    Used by unit tests; the figures use the dynamic observer.
    """
    regions = func.meta.get("regions", [])
    boundaries = sum(
        1
        for block in func.blocks.values()
        for i in block.instrs
        if isinstance(i, RegionBoundary)
    )
    ckpts = sum(
        1
        for block in func.blocks.values()
        for i in block.instrs
        if isinstance(i, CheckpointStore)
    )
    total_instrs = func.num_instrs - boundaries
    avg = total_instrs / max(1, len(regions))
    return StaticRegionStats(
        num_regions=len(regions),
        num_checkpoints=ckpts,
        num_boundaries=boundaries,
        avg_static_instrs=avg,
    )
