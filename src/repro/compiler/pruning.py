"""Optimal checkpoint pruning (paper Section 4.4.1).

A checkpoint store can be removed when the register's value at every region
boundary it serves is *reconstructible* from other values available in
checkpoint storage at recovery time.  The pruned checkpoint is replaced by
a recovery block — the backward slice that recomputes the value — attached
to each served region; the crash-recovery protocol executes recovery
blocks after reloading checkpoint storage (Section 5.4.1).

A register ``q`` is *available* at boundary ``β`` when its slot is
guaranteed to hold the value ``q`` has on entry to ``β``'s region:

* ``q`` is a parameter never redefined in the function (the caller's
  argument checkpoints populate its slot), or
* ``q`` is live into ``β`` and still covered by a checkpoint store
  (not pruned), or
* ``q``'s unique reaching definition at ``β`` is followed in its block by
  a surviving checkpoint of ``q`` before any redefinition.

Safety conditions (conservative relative to the paper's optimal algorithm,
which also slices across control dependences):

* the slice contains only pure, re-executable instructions (ALU/moves),
* every slice instruction sits in a block *dominating* the boundary, with
  a unique reaching definition at each step — the reconstruction therefore
  executes unconditionally on every path and is deterministic,
* executing the slice at recovery clobbers no live-in register other than
  the target,
* registers used as recovery inputs are pinned: none of their checkpoints
  may be pruned afterwards.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.ir.cfg import CFG, DomTree
from repro.ir.function import Function, RecoveryBlock
from repro.ir.instructions import BinOp, CheckpointStore, Instr, Move, UnOp
from repro.ir.liveness import compute_liveness
from repro.ir.reaching import ReachingDefs, compute_reaching_defs
from repro.compiler.clone import clone_instr
from repro.compiler.checkpoints import boundaries_served, checkpoint_sites

_PURE = (BinOp, UnOp, Move)

#: Maximum instructions allowed in one recovery slice.
MAX_SLICE = 16


class _Pruner:
    def __init__(self, func: Function) -> None:
        self.func = func
        self.cfg = CFG(func)
        self.dom = DomTree(self.cfg)
        self.liveness = compute_liveness(func, self.cfg)
        self.rdefs = compute_reaching_defs(func, self.cfg)
        regions = func.meta["regions"]
        self.region_by_block = {r.entry_block: r for r in regions}
        #: live-in registers still covered by a checkpoint, per boundary.
        self.covered: Dict[str, Set[int]] = {
            r.entry_block: set(r.live_in) for r in regions
        }
        #: parameters with no redefinition: slots always valid (arg ckpts).
        self.stable_params = frozenset(
            r for r in range(func.num_params) if not self.rdefs.defs_of.get(r)
        )
        #: registers used as recovery inputs — their ckpts must survive.
        self.pinned: Set[int] = set()
        #: checkpoint sites already scheduled for removal.
        self.removed: Set[Tuple[str, int]] = set()

    # -- availability -------------------------------------------------------

    def _ckpt_after_unique_def(self, b_label: str, reg: int) -> Optional[Tuple[str, int]]:
        """Surviving checkpoint site guarding reg's unique dominating def."""
        sites = self.rdefs.reaching_defs_of(self.func, b_label, 0, reg)
        if len(sites) != 1:
            return None
        d_label, d_index, _ = next(iter(sites))
        if not self.dom.dominates(d_label, b_label):
            return None
        block = self.func.blocks[d_label]
        for i in range(d_index + 1, len(block.instrs)):
            instr = block.instrs[i]
            if isinstance(instr, CheckpointStore) and instr.src.index == reg:
                if (d_label, i) in self.removed:
                    return None
                return (d_label, i)
            if any(d.index == reg for d in instr.defs()):
                return None
        return None

    def _is_available(self, b_label: str, reg: int) -> bool:
        if reg in self.stable_params:
            return True
        if reg in self.covered[b_label]:
            return True
        return self._ckpt_after_unique_def(b_label, reg) is not None

    # -- slicing -------------------------------------------------------------

    def trace_slice(
        self, b_label: str, reg: int
    ) -> Optional[Tuple[List[Tuple[str, int]], Set[int]]]:
        """Backward slice of ``reg`` at ``b_label`` stopping at available regs.

        Returns (slice sites producers-first, input registers), or ``None``
        if any safety condition fails.
        """
        func, rdefs, dom = self.func, self.rdefs, self.dom
        ordered: List[Tuple[str, int]] = []
        seen: Set[Tuple[str, int]] = set()
        inputs: Set[int] = set()

        def visit(lbl: str, idx: int, r: int) -> bool:
            sites = rdefs.reaching_defs_of(func, lbl, idx, r)
            if len(sites) != 1:
                return False
            d_label, d_index, _ = next(iter(sites))
            if (d_label, d_index) in seen:
                return True
            if not dom.dominates(d_label, b_label):
                return False
            instr = func.blocks[d_label].instrs[d_index]
            if not isinstance(instr, _PURE):
                return False
            if len(seen) >= MAX_SLICE:
                return False
            seen.add((d_label, d_index))
            for use in instr.uses():
                u = use.index
                if u != reg and self._is_available(b_label, u):
                    inputs.add(u)
                    continue
                if not visit(d_label, d_index, u):
                    return False
            ordered.append((d_label, d_index))
            return True

        if not visit(b_label, 0, reg):
            return None
        return ordered, inputs

    # -- main loop --------------------------------------------------------------

    def run(self) -> int:
        func = self.func
        pruned = 0
        to_remove: List[Tuple[str, int]] = []

        for (label, index) in checkpoint_sites(func):
            instr = func.blocks[label].instrs[index]
            assert isinstance(instr, CheckpointStore)
            reg = instr.src.index
            served = boundaries_served(
                func, self.cfg, self.liveness, self.rdefs, label, index
            )
            if not served:
                # Serves no boundary (possible after region merging): the
                # checkpoint is dead weight; drop it with no recovery code.
                to_remove.append((label, index))
                self.removed.add((label, index))
                pruned += 1
                continue
            if reg in self.pinned:
                continue
            plans: List[Tuple[str, List[Tuple[str, int]], Set[int]]] = []
            ok = True
            for b_label in sorted(served):
                traced = self.trace_slice(b_label, reg)
                if traced is None or not traced[0]:
                    ok = False
                    break
                slice_sites, inputs = traced
                # Clobber check: intermediates must not overwrite other
                # live-in registers of the boundary.
                live_in = self.liveness.live_in[b_label]
                for (s_label, s_index) in slice_sites:
                    for d in func.blocks[s_label].instrs[s_index].defs():
                        if d.index != reg and d.index in live_in:
                            ok = False
                            break
                    if not ok:
                        break
                if not ok:
                    break
                plans.append((b_label, slice_sites, inputs))
            if not ok:
                continue

            # Commit this prune: recovery blocks + bookkeeping.
            for (b_label, slice_sites, inputs) in plans:
                region = self.region_by_block[b_label]
                instrs: List[Instr] = [
                    clone_instr(func.blocks[s].instrs[i])
                    for (s, i) in slice_sites
                ]
                func.recovery_blocks.setdefault(region.region_id, []).append(
                    RecoveryBlock(reg, instrs)
                )
                self.covered[b_label].discard(reg)
                self.pinned |= inputs
            to_remove.append((label, index))
            self.removed.add((label, index))
            pruned += 1

        # Physically delete pruned checkpoints, highest index first.
        by_block: Dict[str, List[int]] = {}
        for (label, index) in to_remove:
            by_block.setdefault(label, []).append(index)
        for label, indices in by_block.items():
            block = func.blocks[label]
            for index in sorted(indices, reverse=True):
                assert isinstance(block.instrs[index], CheckpointStore)
                del block.instrs[index]
        return pruned


def prune_checkpoints(func: Function) -> int:
    """Prune reconstructible checkpoints; returns the number removed.

    Must run after checkpoint insertion.  Attaches
    :class:`~repro.ir.function.RecoveryBlock` entries to
    ``func.recovery_blocks`` keyed by region id.
    """
    if func.meta.get("regions") is None:
        raise ValueError(f"{func.name}: run form_regions/insert_checkpoints first")
    pruned = _Pruner(func).run()
    func.meta["checkpoints_pruned"] = pruned
    return pruned
