"""Small-function inlining — an extension beyond the paper.

Calls are mandatory region boundaries (Section 4.1), so call-dense code
(the deepsjeng stand-in, OS-service code) pays boundary + argument-
checkpoint costs at every call, and its regions stay short no matter the
threshold — the paper's Section 6.3 closes by asking for region
formations with more instructions.  Inlining small leaf functions removes
those boundaries entirely: the callee's body joins the caller's region
budget, unrolling and checkpoint optimisations then see through it.

The pass is conservative: only *leaf* callees (no calls of their own, so
no recursion and bounded growth) below an instruction budget are inlined,
and each caller only grows up to a size cap.  Exercised by the
``OptConfig.inlined()`` configuration and the ablation benchmarks.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Branch,
    Call,
    Halt,
    Instr,
    Jump,
    Ret,
)
from repro.ir.module import MAX_REGS, Module
from repro.ir.values import Reg
from repro.compiler.clone import clone_instr

#: Callees larger than this are never inlined.
DEFAULT_MAX_CALLEE_INSTRS = 32

#: Stop growing a caller past this many instructions.
DEFAULT_MAX_CALLER_INSTRS = 2048


def _is_inlinable(callee: Function, max_instrs: int) -> bool:
    """Leaf, small, and structurally simple enough to splice."""
    if callee.num_instrs > max_instrs:
        return False
    for instr in callee.instructions():
        if isinstance(instr, (Call, Halt)):
            return False
    return True


def _remap_reg(reg: Reg, base: int) -> Reg:
    return Reg(reg.index + base)


def _remap_instr(instr: Instr, base: int) -> Instr:
    """Clone ``instr`` with every register shifted by ``base``."""
    new = clone_instr(instr)
    for field in dataclasses.fields(new):
        value = getattr(new, field.name)
        if isinstance(value, Reg):
            setattr(new, field.name, _remap_reg(value, base))
        elif isinstance(value, tuple) and any(isinstance(v, Reg) for v in value):
            setattr(
                new,
                field.name,
                tuple(
                    _remap_reg(v, base) if isinstance(v, Reg) else v
                    for v in value
                ),
            )
    return new


def inline_call(
    caller: Function,
    label: str,
    index: int,
    callee: Function,
) -> bool:
    """Inline the ``Call`` at ``caller.blocks[label][index]`` in place.

    Returns False if register pressure would exceed checkpoint storage.
    """
    call = caller.blocks[label].instrs[index]
    assert isinstance(call, Call) and call.callee == callee.name
    reg_base = caller.num_regs
    if reg_base + callee.num_regs > MAX_REGS:
        return False
    caller.num_regs += callee.num_regs

    from repro.ir.instructions import Move

    # Split the caller's block: [prefix][inlined body...][continuation].
    block = caller.blocks[label]
    cont_label = caller.fresh_label(f"{label}.after_{callee.name}")
    cont_instrs = block.instrs[index + 1 :]
    del block.instrs[index:]

    # Argument moves into the callee's (remapped) parameter registers.
    for i, arg in enumerate(call.args):
        block.append(Move(Reg(reg_base + i), arg))

    # Clone the callee's blocks with renamed labels and remapped registers;
    # returns become moves + jumps to the continuation.
    label_map = {
        l: caller.fresh_label(f"{l}.in_{callee.name}") for l in callee.blocks
    }
    entry_clone = label_map[callee.entry.label]
    block.append(Jump(entry_clone))

    for c_label, c_block in callee.blocks.items():
        new_instrs: List[Instr] = []
        for instr in c_block.instrs:
            if isinstance(instr, Ret):
                if call.dst is not None:
                    from repro.ir.values import Imm

                    value = instr.value
                    if isinstance(value, Reg):
                        value = _remap_reg(value, reg_base)
                    elif value is None:
                        value = Imm(0)  # machine convention for void rets
                    new_instrs.append(Move(call.dst, value))
                new_instrs.append(Jump(cont_label))
            else:
                remapped = _remap_instr(instr, reg_base)
                remapped = clone_instr(remapped, label_map)
                new_instrs.append(remapped)
        caller.add_block(BasicBlock(label_map[c_label], new_instrs))

    caller.add_block(BasicBlock(cont_label, cont_instrs))
    return True


def inline_small_functions(
    module: Module,
    max_callee_instrs: int = DEFAULT_MAX_CALLEE_INSTRS,
    max_caller_instrs: int = DEFAULT_MAX_CALLER_INSTRS,
) -> int:
    """Inline every eligible call site in the module; returns the count."""
    inlined = 0
    for caller in module.functions.values():
        changed = True
        while changed and caller.num_instrs < max_caller_instrs:
            changed = False
            for label in list(caller.blocks.keys()):
                block = caller.blocks[label]
                for index, instr in enumerate(block.instrs):
                    if not isinstance(instr, Call):
                        continue
                    callee = module.functions.get(instr.callee)
                    if callee is None or callee is caller:
                        continue
                    if not _is_inlinable(callee, max_callee_instrs):
                        continue
                    if inline_call(caller, label, index, callee):
                        inlined += 1
                        changed = True
                        break
                if changed:
                    break
    return inlined
