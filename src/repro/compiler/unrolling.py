"""Speculative loop unrolling (paper Section 4.3).

Traditional unrolling needs a static trip count; Capri's speculative
unrolling instead duplicates the loop *body together with its exit
condition*, so it applies to any loop.  After unrolling by factor K, only
the original header remains a natural-loop header (all back edges funnel
into it), so region formation places one boundary per K iterations instead
of one per iteration — the region grows ~K× and per-iteration register
checkpoints (e.g. the loop counter) shrink ~K×.

The pass runs *before* region formation.  It targets innermost loops and
picks the largest unroll factor whose worst-case per-region store weight
still fits the threshold.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.basicblock import BasicBlock
from repro.ir.cfg import CFG, Loop, natural_loops
from repro.ir.function import Function
from repro.ir.instructions import Call, Instr, Store, AtomicRMW, Fence
from repro.ir.liveness import compute_liveness
from repro.compiler.clone import clone_instr


def _loop_store_weight(func: Function, loop: Loop) -> int:
    """Worst-case stores of one iteration (plus call-arg checkpoints)."""
    weight = 0
    for label in loop.body:
        for instr in func.blocks[label].instrs:
            weight += instr.store_count
            if isinstance(instr, Call):
                weight += len(instr.args)
    return weight


def _loop_has_mandatory_points(func: Function, loop: Loop) -> bool:
    """Loops containing calls/fences/atomics keep per-iteration boundaries,
    so unrolling them cannot lengthen regions — skip."""
    for label in loop.body:
        for instr in func.blocks[label].instrs:
            if isinstance(instr, (Call, Fence, AtomicRMW)):
                return True
    return False


def choose_unroll_factor(
    func: Function, loop: Loop, threshold: int, max_unroll: int
) -> int:
    """Largest K <= max_unroll with K * per-iteration store weight fitting.

    The checkpoint estimate per iteration is folded in as the live-out
    defs of the loop body (same heuristic region formation uses).
    """
    stores = _loop_store_weight(func, loop)
    cfg = CFG(func)
    liveness = compute_liveness(func, cfg)
    ckpt_est = 0
    for label in loop.body:
        defs = {d.index for i in func.blocks[label].instrs for d in i.defs()}
        ckpt_est += len(defs & liveness.live_out[label])
    per_iter = max(1, stores + ckpt_est)
    k = min(max_unroll, max(1, threshold // per_iter))
    # Code-bloat guard: keep the unrolled loop under ~512 instructions.
    body_instrs = sum(len(func.blocks[l].instrs) for l in loop.body)
    if body_instrs * k > 512:
        k = max(1, 512 // max(1, body_instrs))
    return k


def unroll_loop(func: Function, loop: Loop, factor: int) -> bool:
    """Unroll ``loop`` by ``factor`` (>= 2) in place.

    Copies the full loop body (including the header's exit test) K-1 times;
    latch edges of copy *i* retarget the header of copy *i+1*, and the last
    copy's latches go back to the original header.  Exit edges keep their
    original targets in every copy, preserving semantics for any dynamic
    trip count — that is what makes the unrolling "speculative".
    """
    if factor < 2:
        return False
    body = sorted(loop.body)
    # label -> per-copy clone labels
    copy_labels: List[Dict[str, str]] = []
    for k in range(1, factor):
        copy_labels.append({l: func.fresh_label(f"{l}.u{k}") for l in body})

    for k in range(1, factor):
        label_map = dict(copy_labels[k - 1])
        # Any in-body edge to the header is a back edge (the header
        # dominates the loop), so within copy k it must enter the *next*
        # copy's header — or the original header from the last copy.
        next_header = (
            copy_labels[k][loop.header] if k < factor - 1 else loop.header
        )
        label_map[loop.header] = next_header
        for label in body:
            new_label = copy_labels[k - 1][label]
            new_instrs: List[Instr] = [
                clone_instr(instr, label_map)
                for instr in func.blocks[label].instrs
            ]
            func.add_block(BasicBlock(new_label, new_instrs))

    # Original copy's latch edges enter copy 1's header.
    first_copy_header = copy_labels[0][loop.header]
    from repro.ir.instructions import Branch, Jump

    for latch in loop.latches:
        term = func.blocks[latch].terminator
        if isinstance(term, Jump) and term.target == loop.header:
            term.target = first_copy_header
        elif isinstance(term, Branch):
            if term.if_true == loop.header:
                term.if_true = first_copy_header
            if term.if_false == loop.header:
                term.if_false = first_copy_header
    return True


def speculative_unroll(
    func: Function,
    threshold: int = 256,
    max_unroll: int = 8,
) -> int:
    """Unroll all eligible innermost loops; returns the number unrolled.

    Eligibility: innermost, no calls/fences/atomics inside (those force
    per-iteration boundaries anyway), and a chosen factor of at least 2.
    """
    cfg = CFG(func)
    loops = natural_loops(cfg)
    inner = [l for l in loops if not any(o.parent is l for o in loops)]
    unrolled = 0
    for loop in inner:
        if _loop_has_mandatory_points(func, loop):
            continue
        factor = choose_unroll_factor(func, loop, threshold, max_unroll)
        if factor < 2:
            continue
        if unroll_loop(func, loop, factor):
            unrolled += 1
    func.meta["loops_unrolled"] = unrolled
    return unrolled
