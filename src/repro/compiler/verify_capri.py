"""Static verification of Capri instrumentation invariants.

The crash tests prove recovery works on executions we run; this verifier
proves the *static* obligations hold on every path of the instrumented
program, independently of the passes that established them:

1. **Region budget** — no path between consecutive boundaries exceeds the
   store threshold (the back-end proxy sizing contract, Section 5.2.2).
2. **Checkpoint coverage** — for every region and every live-in register,
   each reaching definition is either followed by a surviving checkpoint
   store (before any redefinition), is a never-redefined parameter
   (covered by caller argument checkpoints), or the region has a recovery
   block reconstructing the register (Section 4.4.1).  This is the
   invariant that makes register restore correct at any crash point.
3. **Recovery block purity** — recovery blocks replay at recovery time
   over the restored register file, so they must be pure ALU/move code
   and their inputs must themselves be covered (not pruned).

Run via :func:`verify_capri_module` after compilation; the pipeline's
tests and the randomized property suite call it on every configuration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Call,
    CheckpointStore,
    Move,
    RegionBoundary,
    UnOp,
)
from repro.ir.liveness import compute_liveness
from repro.ir.module import Module
from repro.ir.reaching import compute_reaching_defs

_PURE = (BinOp, UnOp, Move)


class CapriInvariantError(Exception):
    """An instrumented module violates a whole-system-persistence invariant."""


def _boundary_blocks(func: Function) -> Dict[str, int]:
    """Blocks whose first instruction is a region boundary -> region id."""
    out: Dict[str, int] = {}
    for label, block in func.blocks.items():
        if block.instrs and isinstance(block.instrs[0], RegionBoundary):
            out[label] = block.instrs[0].region_id
    return out


def check_region_budget(func: Function, threshold: int) -> None:
    """Invariant 1: worst-case stores between boundaries <= threshold.

    Longest-path over the boundary-free subgraph, counting real stores,
    checkpoint stores, and call argument checkpoints (machine-emitted).
    """
    cfg = CFG(func)
    boundaries = set(_boundary_blocks(func))
    weights: Dict[str, int] = {}
    for label in cfg.rpo:
        w = 0
        for instr in func.blocks[label].instrs:
            w += instr.store_count
            if isinstance(instr, Call):
                w += len(instr.args)
        weights[label] = w

    # g(b) = stores from b's start until the next boundary (or exit).
    g: Dict[str, int] = {}
    on_stack: Set[str] = set()

    order = list(reversed(cfg.rpo))
    for label in order:
        succ_max = 0
        for s in cfg.succs[label]:
            if s in boundaries:
                continue
            if s not in g:
                # Back edge to a non-boundary block would mean a cycle
                # without a boundary: unbounded stores.
                raise CapriInvariantError(
                    f"{func.name}: cycle through {s!r} with no region boundary"
                )
            succ_max = max(succ_max, g[s])
        g[label] = weights[label] + succ_max

    for label in boundaries:
        if label in g and g[label] > threshold:
            raise CapriInvariantError(
                f"{func.name}: region at {label!r} may execute {g[label]} "
                f"stores (> threshold {threshold})"
            )


def _find_uncovered_boundary(
    func: Function,
    cfg: CFG,
    liveness,
    recovered: Dict[str, Set[int]],
    d_label: str,
    d_index: int,
    reg: int,
) -> Optional[str]:
    """Path-sensitive coverage check for one definition of ``reg``.

    Walks every path from just after the def, stopping a path when the
    register is checkpointed (slot now correct) or redefined (a later
    def takes responsibility).  Reaching a region boundary where ``reg``
    is live *without* a checkpoint is a violation — unless the region
    carries a recovery block for ``reg`` (pruning's replacement); the
    walk then continues, because later boundaries need their own cover.

    Returns the violating boundary block label, or ``None``.
    """

    def scan_block(label: str, start: int) -> Tuple[str, Optional[List[str]]]:
        """('covered'|'killed'|'fallthrough', successors) for one block."""
        instrs = func.blocks[label].instrs
        for i in range(start, len(instrs)):
            instr = instrs[i]
            if isinstance(instr, CheckpointStore) and instr.src.index == reg:
                return "covered", None
            if any(d.index == reg for d in instr.defs()):
                return "killed", None
            if isinstance(instr, RegionBoundary) and i == 0:
                pass  # handled by the caller on block entry
        return "fallthrough", cfg.succs.get(label, [])

    # Seed: the remainder of the defining block.
    state, succs = scan_block(d_label, d_index + 1)
    if state != "fallthrough":
        return None
    work: List[str] = list(succs or [])
    seen: Set[str] = set()
    while work:
        label = work.pop()
        if label in seen or label not in func.blocks:
            continue
        seen.add(label)
        block = func.blocks[label]
        if block.instrs and isinstance(block.instrs[0], RegionBoundary):
            if reg in liveness.live_in.get(label, frozenset()):
                if reg not in recovered.get(label, set()):
                    return label
        state, succs = scan_block(label, 0)
        if state == "fallthrough":
            work.extend(succs or [])
    return None


def check_checkpoint_coverage(func: Function) -> None:
    """Invariant 2: every region live-in register is restorable.

    For every definition of every register, every redefinition-free path
    to a boundary where the register is live must pass a checkpoint (or
    the region must carry a recovery block).
    """
    regions = func.meta.get("regions")
    if regions is None:
        raise CapriInvariantError(
            f"{func.name}: no region metadata (was the module compiled?)"
        )
    cfg = CFG(func)
    liveness = compute_liveness(func, cfg)
    rdefs = compute_reaching_defs(func, cfg)
    recovered: Dict[str, Set[int]] = {
        r.entry_block: {
            rb.target for rb in func.recovery_blocks.get(r.region_id, [])
        }
        for r in regions
    }
    for reg, sites in rdefs.defs_of.items():
        for (d_label, d_index, _) in sites:
            if d_label not in cfg.rpo_index:
                continue
            violation = _find_uncovered_boundary(
                func, cfg, liveness, recovered, d_label, d_index, reg
            )
            if violation is not None:
                raise CapriInvariantError(
                    f"{func.name}: def of r{reg} at {d_label}[{d_index}] "
                    f"reaches boundary block {violation!r} (r{reg} live) "
                    "with no checkpoint or recovery block on the path"
                )


def check_recovery_blocks(func: Function) -> None:
    """Invariant 3: recovery blocks are pure and their inputs covered."""
    regions = {r.region_id: r for r in func.meta.get("regions", [])}
    cfg = CFG(func)
    liveness = compute_liveness(func, cfg)
    for region_id, blocks in func.recovery_blocks.items():
        region = regions.get(region_id)
        recovered_targets = {rb.target for rb in blocks}
        for rb in blocks:
            defined: Set[int] = set()
            for instr in rb.instrs:
                if not isinstance(instr, _PURE):
                    raise CapriInvariantError(
                        f"{func.name}: impure instruction {instr!r} in "
                        f"recovery block of region #{region_id}"
                    )
                for use in instr.uses():
                    if use.index in defined:
                        continue
                    if use.index in recovered_targets - {rb.target}:
                        raise CapriInvariantError(
                            f"{func.name}: recovery block for r{rb.target} "
                            f"reads pruned register r{use.index}"
                        )
                for d in instr.defs():
                    defined.add(d.index)
            if rb.target not in defined:
                raise CapriInvariantError(
                    f"{func.name}: recovery block for r{rb.target} never "
                    "defines its target"
                )
            # Intermediates must not clobber other live-in registers.
            if region is not None and region.entry_block in liveness.live_in:
                live = liveness.live_in[region.entry_block]
                for d in defined - {rb.target}:
                    if d in live:
                        raise CapriInvariantError(
                            f"{func.name}: recovery block for r{rb.target} "
                            f"clobbers live-in r{d}"
                        )


def verify_capri_function(func: Function, threshold: int) -> None:
    """All three invariants for one instrumented function."""
    check_region_budget(func, threshold)
    check_checkpoint_coverage(func)
    check_recovery_blocks(func)


def verify_capri_module(module: Module, threshold: int) -> None:
    """All invariants for every function of an instrumented module."""
    for func in module.functions.values():
        verify_capri_function(func, threshold)
