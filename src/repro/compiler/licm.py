"""Moving checkpoints out of loops (paper Section 4.4.2).

A checkpoint store may be delayed from its original position (immediately
after the defining instruction) to any point before the first region
boundary it serves.  When the definition sits inside a loop but every
boundary served lies *outside* the loop — a value produced per-iteration
but only consumed after the loop — the per-iteration checkpoint is wasted
work: only the final iteration's value matters.  The pass moves such
checkpoints onto the loop's exit edges, executing them once instead of
once per iteration (cf. the paper's Figure 4).

Loop-carried registers (live at the header boundary) are never moved: the
header region needs their value every iteration.

The pass also performs the redundant-duplicate cleanup the paper mentions:
two checkpoints of the same register in one block with no intervening
redefinition — the earlier one can serve no boundary (boundaries sit at
block starts) and is deleted.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.cfg import CFG, natural_loops
from repro.ir.function import Function
from repro.ir.instructions import CheckpointStore, Jump
from repro.ir.liveness import compute_liveness
from repro.ir.reaching import compute_reaching_defs
from repro.compiler.checkpoints import boundaries_served, checkpoint_sites


def move_checkpoints_out_of_loops(func: Function) -> int:
    """Apply checkpoint LICM in place; returns checkpoints moved + deduped.

    Must run after checkpoint insertion (and, in the standard pipeline,
    after pruning).
    """
    moved = _dedupe_in_block(func)

    cfg = CFG(func)
    loops = natural_loops(cfg)
    if not loops:
        func.meta["checkpoints_licm"] = moved
        return moved
    liveness = compute_liveness(func, cfg)
    rdefs = compute_reaching_defs(func, cfg)
    region_entries = {
        r.entry_block for r in func.meta.get("regions", [])
    }

    # Innermost-first so a checkpoint can hop out loop by loop.
    loops_by_depth = sorted(loops, key=lambda l: -l.depth)

    removals: Dict[str, List[int]] = {}
    exit_ckpts: Dict[Tuple[str, str], List[int]] = {}  # (from, to) edge -> regs

    claimed: Set[Tuple[str, int]] = set()
    for loop in loops_by_depth:
        for label in sorted(loop.body):
            block = func.blocks[label]
            for index, instr in enumerate(block.instrs):
                if not isinstance(instr, CheckpointStore):
                    continue
                if (label, index) in claimed:
                    continue
                reg = instr.src.index
                served = boundaries_served(
                    func, cfg, liveness, rdefs, label, index
                )
                if not served:
                    continue  # pruning handles dead checkpoints
                # Delaying to the exit edges is safe unless some boundary
                # is reached from the def on a path that stays inside the
                # loop (the back-edge service of a loop-carried value);
                # boundaries served only via exit-and-re-enter paths are
                # still covered by the relocated checkpoint.
                if _serves_boundary_inside_loop(
                    func, cfg, liveness, loop, region_entries, label, index, reg
                ):
                    continue
                claimed.add((label, index))
                removals.setdefault(label, []).append(index)
                for edge in loop.exits(cfg):
                    exit_ckpts.setdefault(edge, []).append(reg)
                moved += 1

    for label, indices in removals.items():
        block = func.blocks[label]
        for index in sorted(indices, reverse=True):
            del block.instrs[index]

    # Split each exit edge with a block holding the relocated checkpoints.
    for (src, dst), regs in sorted(exit_ckpts.items()):
        _insert_on_edge(func, src, dst, regs)

    func.meta["checkpoints_licm"] = moved
    return moved


def _serves_boundary_inside_loop(
    func: Function,
    cfg: CFG,
    liveness,
    loop,
    region_entries: Set[str],
    ckpt_label: str,
    ckpt_index: int,
    reg: int,
) -> bool:
    """True if a boundary needing ``reg`` is reachable from the checkpoint
    along a path that stays inside ``loop`` and never redefines ``reg``."""
    instrs = func.blocks[ckpt_label].instrs
    for i in range(ckpt_index + 1, len(instrs)):
        if any(d.index == reg for d in instrs[i].defs()):
            return False  # value dead before leaving the block
    seen: Set[str] = set()
    work = [s for s in cfg.succs[ckpt_label] if s in loop.body]
    while work:
        label = work.pop()
        if label in seen:
            continue
        seen.add(label)
        if label in region_entries and reg in liveness.live_in[label]:
            return True
        redefined = any(
            any(d.index == reg for d in instr.defs())
            for instr in func.blocks[label].instrs
        )
        if redefined:
            continue  # paths through this block no longer carry our value
        work.extend(s for s in cfg.succs[label] if s in loop.body)
    return False


def _dedupe_in_block(func: Function) -> int:
    """Drop earlier duplicate checkpoints of a register within a block."""
    removed = 0
    for block in func.blocks.values():
        last_ckpt: Dict[int, int] = {}
        dead: List[int] = []
        for i, instr in enumerate(block.instrs):
            if isinstance(instr, CheckpointStore):
                reg = instr.src.index
                if reg in last_ckpt:
                    dead.append(last_ckpt[reg])
                last_ckpt[reg] = i
            else:
                for d in instr.defs():
                    last_ckpt.pop(d.index, None)
        for i in sorted(dead, reverse=True):
            del block.instrs[i]
            removed += 1
    return removed


def _insert_on_edge(func: Function, src: str, dst: str, regs: List[int]) -> None:
    """Split edge src->dst with a block of checkpoint stores for ``regs``."""
    from repro.ir.instructions import Branch
    from repro.ir.values import Reg

    label = func.fresh_label(f"{src}.exit_ckpt")
    seen: Set[int] = set()
    instrs = []
    for reg in regs:
        if reg not in seen:
            seen.add(reg)
            instrs.append(CheckpointStore(Reg(reg)))
    instrs.append(Jump(dst))
    func.add_block(BasicBlock(label, instrs))
    term = func.blocks[src].terminator
    if isinstance(term, Jump):
        if term.target == dst:
            term.target = label
    elif isinstance(term, Branch):
        if term.if_true == dst:
            term.if_true = label
        if term.if_false == dst:
            term.if_false = label
