"""Register-checkpointing store insertion (paper Sections 3.2 and 4.2).

For every region boundary the compiler determines the registers that are
live into the region and makes sure each one's value is in checkpoint
storage before the boundary commits.  Following the paper, the pass looks
at *definition sites*: a register definition whose value reaches a boundary
where the register is live gets a :class:`CheckpointStore` inserted
immediately after it ("the compiler is interested in the last instructions
that update the same registers … it inserts checkpoint stores immediately
following them").

Parameters have no defining instruction; their checkpoint happens on the
caller side — the machine emits argument checkpoints at call/spawn time
(see :mod:`repro.isa.machine`), mirroring how the paper's caller checkpoints
the argument registers before the call boundary.

The pass records each region's live-in set in the region table
(``func.meta["regions"]``); the crash-recovery protocol and the tests use
it to validate restored register files.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.instructions import CheckpointStore, RegionBoundary
from repro.ir.liveness import compute_liveness
from repro.ir.reaching import compute_reaching_defs

#: A definition site pending a checkpoint: (block label, instr index, reg).
_Site = Tuple[str, int, int]


def insert_checkpoints(func: Function) -> int:
    """Insert checkpoint stores after defs that feed region live-ins.

    Must run after :func:`repro.compiler.regions.form_regions`.  Returns the
    number of checkpoint stores inserted.
    """
    regions = func.meta.get("regions")
    if regions is None:
        raise ValueError(f"{func.name}: run form_regions before insert_checkpoints")

    cfg = CFG(func)
    liveness = compute_liveness(func, cfg)
    rdefs = compute_reaching_defs(func, cfg)

    needed: Set[_Site] = set()
    for region in regions:
        label = region.entry_block
        live_in = liveness.live_in[label]
        region.live_in = frozenset(live_in)
        reach = rdefs.reach_in[label]
        for (d_label, d_index, d_reg) in reach:
            if d_reg in live_in:
                needed.add((d_label, d_index, d_reg))

    # Insert per block in descending index order so indices stay valid.
    by_block: Dict[str, List[_Site]] = {}
    for site in needed:
        by_block.setdefault(site[0], []).append(site)
    inserted = 0
    for label, sites in by_block.items():
        block = func.blocks[label]
        for (_, index, reg) in sorted(sites, key=lambda s: -s[1]):
            from repro.ir.values import Reg

            block.instrs.insert(index + 1, CheckpointStore(Reg(reg)))
            inserted += 1
    func.meta["checkpoints_inserted"] = inserted
    return inserted


def checkpoint_sites(func: Function) -> List[Tuple[str, int]]:
    """All (block label, index) positions of checkpoint stores."""
    out: List[Tuple[str, int]] = []
    for label, block in func.blocks.items():
        for i, instr in enumerate(block.instrs):
            if isinstance(instr, CheckpointStore):
                out.append((label, i))
    return out


def boundaries_served(
    func: Function,
    cfg: CFG,
    liveness,
    rdefs,
    label: str,
    ckpt_index: int,
) -> FrozenSet[str]:
    """Boundary blocks that the checkpoint at (label, ckpt_index) serves.

    A checkpoint of register ``r`` placed after def ``d`` serves boundary
    ``β`` when ``d`` reaches ``β`` and ``r`` is live into ``β``.  Used by
    the pruning and LICM passes to decide whether removal/motion is safe.
    """
    instr = func.blocks[label].instrs[ckpt_index]
    if not isinstance(instr, CheckpointStore):
        raise ValueError(f"{label}[{ckpt_index}] is not a checkpoint store")
    reg = instr.src.index

    # The def guarded by this checkpoint is the nearest preceding def of
    # ``reg`` in the same block (argument checkpoints are machine-emitted
    # and never appear as instructions).
    block = func.blocks[label]
    def_index = None
    for i in range(ckpt_index - 1, -1, -1):
        if any(d.index == reg for d in block.instrs[i].defs()):
            def_index = i
            break

    served: Set[str] = set()
    for region in func.meta.get("regions", []):
        b_label = region.entry_block
        if reg not in liveness.live_in[b_label]:
            continue
        reach = rdefs.reach_in[b_label]
        if def_index is not None:
            if (label, def_index, reg) in reach:
                served.add(b_label)
        else:
            # Checkpoint with no preceding in-block def (e.g. moved by
            # LICM): conservatively report all boundaries where reg is
            # live and some def in this block's predecessors reaches.
            served.add(b_label)
    return frozenset(served)
