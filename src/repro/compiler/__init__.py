"""The Capri compiler: region formation and checkpoint optimisation passes.

This package implements Section 4 of the paper on our IR substrate:

* :mod:`repro.compiler.clone` — module/function deep-cloning (passes never
  mutate the caller's module),
* :mod:`repro.compiler.regions` — region formation under a store-count
  threshold (Section 4.1),
* :mod:`repro.compiler.checkpoints` — register-checkpointing store
  insertion from live-in/reaching-def analysis (Sections 3.2 & 4.2),
* :mod:`repro.compiler.unrolling` — speculative loop unrolling
  (Section 4.3),
* :mod:`repro.compiler.pruning` — optimal checkpoint pruning with
  recovery-block generation (Section 4.4.1),
* :mod:`repro.compiler.licm` — moving checkpoints out of loops
  (Section 4.4.2),
* :mod:`repro.compiler.pipeline` — the :class:`CapriCompiler` facade and
  the :class:`OptConfig` ladder used by Figure 9,
* :mod:`repro.compiler.stats` — static/dynamic region statistics for
  Figures 10 and 11.
"""

from repro.compiler.clone import clone_function, clone_instr, clone_module
from repro.compiler.pipeline import CapriCompiler, OptConfig, CompileResult
from repro.compiler.regions import RegionFormationError, form_regions
from repro.compiler.checkpoints import insert_checkpoints
from repro.compiler.unrolling import speculative_unroll
from repro.compiler.pruning import prune_checkpoints
from repro.compiler.licm import move_checkpoints_out_of_loops
from repro.compiler.verify_capri import (
    CapriInvariantError,
    verify_capri_function,
    verify_capri_module,
)
from repro.compiler.stats import (
    RegionStatsObserver,
    static_region_stats,
    StaticRegionStats,
)

__all__ = [
    "CapriCompiler",
    "OptConfig",
    "CompileResult",
    "RegionFormationError",
    "form_regions",
    "insert_checkpoints",
    "speculative_unroll",
    "prune_checkpoints",
    "move_checkpoints_out_of_loops",
    "clone_function",
    "clone_instr",
    "clone_module",
    "CapriInvariantError",
    "verify_capri_function",
    "verify_capri_module",
    "RegionStatsObserver",
    "static_region_stats",
    "StaticRegionStats",
]
