"""Deep-cloning of IR so compiler passes never mutate caller modules."""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function, RecoveryBlock
from repro.ir.instructions import Branch, Instr, Jump
from repro.ir.module import Module


def clone_instr(instr: Instr, label_map: Optional[Dict[str, str]] = None) -> Instr:
    """Copy one instruction, optionally renaming branch target labels.

    Operands (``Reg``/``Imm``) are immutable and shared; the instruction
    object itself is fresh so passes may rewrite fields safely.
    """
    new = dataclasses.replace(instr)
    if label_map:
        if isinstance(new, Jump):
            new.target = label_map.get(new.target, new.target)
        elif isinstance(new, Branch):
            new.if_true = label_map.get(new.if_true, new.if_true)
            new.if_false = label_map.get(new.if_false, new.if_false)
    return new


def clone_function(func: Function) -> Function:
    """Deep-copy a function: fresh blocks, instructions, recovery blocks."""
    out = Function(func.name, num_params=func.num_params, num_regs=func.num_regs)
    for label, block in func.blocks.items():
        out.add_block(BasicBlock(label, [clone_instr(i) for i in block.instrs]))
    for region_id, rbs in func.recovery_blocks.items():
        out.recovery_blocks[region_id] = [
            RecoveryBlock(rb.target, [clone_instr(i) for i in rb.instrs])
            for rb in rbs
        ]
    out.meta = dict(func.meta)
    return out


def clone_module(module: Module) -> Module:
    """Deep-copy a module: fresh functions; data segment layout shared."""
    out = Module(module.name)
    for func in module.functions.values():
        out.add_function(clone_function(func))
    out._next_addr = module._next_addr
    out.initial_data = dict(module.initial_data)
    out.symbols = dict(module.symbols)
    return out
