"""Region formation (paper Section 4.1).

Partitions each function into recoverable regions whose *dynamic* store
count never exceeds the given threshold — the contract that sizes the
back-end proxy buffer (Section 5.2.2).  The pass follows the paper's
heuristic to break the circular dependence between boundary placement and
checkpoint counting:

1. **Mandatory boundary points** are materialised first: function entry,
   every call and return (function entry/exit points), every memory fence
   and atomic operation, and the beginning of every natural-loop header.
   Blocks are split so every boundary sits at a block start.
2. Every remaining block start is an **optional** boundary — i.e. all
   basic blocks are initial regions.
3. Each block gets a conservative **store weight**: its real store count
   plus the checkpoint estimate ``|defs(block) ∩ live_out(block)|`` (each
   such register gets at most one checkpoint store in the block) plus the
   argument-checkpoint count of calls.
4. Optional boundaries are **greedily removed** (regions merged) in
   reverse-postorder as long as no region's worst-case path store weight
   exceeds the threshold.

Because every loop header keeps a boundary, the subgraph of any region is
acyclic and the worst-case store weight is a longest-path computation.

The pass inserts a :class:`~repro.ir.instructions.RegionBoundary` with a
unique ``region_id`` as the first instruction of each boundary block and
records a region table in ``func.meta["regions"]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.cfg import CFG, natural_loops
from repro.ir.function import Function
from repro.ir.instructions import (
    AtomicRMW,
    Call,
    CheckpointStore,
    Fence,
    Halt,
    Instr,
    Jump,
    RegionBoundary,
    Ret,
    Store,
)
from repro.ir.liveness import compute_liveness
from repro.ir.module import Module

#: Smallest supported region threshold; below this single instructions
#: plus their checkpoint estimates cannot be guaranteed to fit a region.
MIN_THRESHOLD = 8


class RegionFormationError(Exception):
    """Raised when regions cannot satisfy the store-count threshold."""


@dataclass
class RegionInfo:
    """One region in the final formation (stored in ``func.meta``)."""

    region_id: int
    entry_block: str
    mandatory: bool
    #: Worst-case dynamic stores (including checkpoint estimates).
    max_store_weight: int = 0
    #: Live-in register indices (filled in by the checkpoint pass).
    live_in: frozenset = frozenset()


def _is_mandatory_pre_point(instr: Instr) -> bool:
    """Instructions that must begin a fresh region (boundary placed before)."""
    return instr.is_region_boundary_point or isinstance(instr, (Ret, Halt))


def _is_mandatory_post_point(instr: Instr) -> bool:
    """Instructions after which a fresh region must begin.

    I/O leaves the persistence domain (Section 3.3): isolating each I/O
    in a single-instruction region bounds re-execution after a crash to
    at most that one operation.
    """
    from repro.ir.instructions import IOWrite

    return isinstance(instr, IOWrite)


def _instr_store_weight(instr: Instr, count_ckpt_estimates: bool) -> int:
    """Dynamic stores contributed by one instruction for region budgeting.

    Calls contribute their argument-checkpoint stores (the machine emits
    one checkpoint per argument at call time; see repro.isa.machine).
    """
    weight = instr.store_count
    if count_ckpt_estimates and isinstance(instr, Call):
        weight += len(instr.args)
    return weight


def split_blocks(func: Function) -> Set[str]:
    """Split blocks so every mandatory boundary point starts a block.

    Returns the set of labels whose block start is a mandatory boundary.
    Loop headers are *not* handled here (they are block starts already);
    callers union them in after recomputing the CFG.
    """
    mandatory: Set[str] = {func.entry.label}
    # Iterate over a snapshot: splitting appends new blocks.
    for label in list(func.blocks.keys()):
        block = func.blocks[label]
        current_label = label
        while True:
            instrs = func.blocks[current_label].instrs
            split_at = None
            for i, instr in enumerate(instrs):
                if _is_mandatory_pre_point(instr) and i > 0:
                    split_at = i
                    break
                if _is_mandatory_pre_point(instr):
                    # A leading Call/Fence/Atomic/IO is a boundary at this
                    # block; later points in the block still need their
                    # own split, so keep scanning.
                    mandatory.add(current_label)
                if _is_mandatory_post_point(instr) and i + 1 < len(instrs):
                    split_at = i + 1
                    break
            if split_at is None:
                break
            new_label = func.fresh_label(f"{current_label}.split")
            tail = instrs[split_at:]
            del instrs[split_at:]
            instrs.append(Jump(new_label))
            func.add_block(BasicBlock(new_label, tail))
            mandatory.add(new_label)
            current_label = new_label
    return mandatory


def _block_store_weights(
    func: Function, cfg: CFG, count_ckpt_estimates: bool
) -> Dict[str, int]:
    """Conservative per-block store weight (stores + checkpoint estimate)."""
    weights: Dict[str, int] = {}
    liveness = compute_liveness(func, cfg) if count_ckpt_estimates else None
    for label in cfg.rpo:
        block = func.blocks[label]
        weight = sum(
            _instr_store_weight(i, count_ckpt_estimates) for i in block.instrs
        )
        if count_ckpt_estimates and liveness is not None:
            defs = {d.index for i in block.instrs for d in i.defs()}
            weight += len(defs & liveness.live_out[label])
        weights[label] = weight
    return weights


def _max_region_weights(
    cfg: CFG, weights: Dict[str, int], boundaries: Set[str]
) -> Dict[str, int]:
    """Worst-case store weight of the region starting at each boundary.

    ``g(b) = w(b) + max(0, max over non-boundary successors s of g(s))``;
    region paths end at boundary blocks or function exits.  The restricted
    graph is acyclic because every loop header is a boundary, so a single
    reverse-RPO sweep suffices.
    """
    g: Dict[str, int] = {}
    for label in reversed(cfg.rpo):
        succ_max = 0
        for s in cfg.succs[label]:
            if s not in boundaries and s in g:
                succ_max = max(succ_max, g[s])
        g[label] = weights[label] + succ_max
    return {b: g[b] for b in boundaries if b in g}


def _check_acyclic_regions(cfg: CFG, boundaries: Set[str]) -> None:
    """Verify no cycle avoids every boundary (irreducible-CFG guard)."""
    color: Dict[str, int] = {}
    for start in cfg.rpo:
        if start in boundaries or color.get(start):
            continue
        stack: List[Tuple[str, int]] = [(start, 0)]
        color[start] = 1
        while stack:
            node, idx = stack[-1]
            succs = [s for s in cfg.succs[node] if s not in boundaries and s in cfg.rpo_index]
            if idx < len(succs):
                stack[-1] = (node, idx + 1)
                child = succs[idx]
                state = color.get(child, 0)
                if state == 1:
                    raise RegionFormationError(
                        "cycle without a region boundary detected "
                        f"(irreducible control flow near {child!r})"
                    )
                if state == 0:
                    color[child] = 1
                    stack.append((child, 0))
            else:
                color[node] = 2
                stack.pop()


def form_regions(
    func: Function,
    threshold: int = 256,
    count_ckpt_estimates: bool = True,
) -> List[RegionInfo]:
    """Run region formation on ``func`` in place; returns the region table.

    Raises :class:`RegionFormationError` if the threshold is too small for
    some basic block even after block-level splitting.
    """
    if threshold < MIN_THRESHOLD:
        raise RegionFormationError(
            f"threshold {threshold} below minimum {MIN_THRESHOLD}"
        )

    mandatory = split_blocks(func)
    cfg = CFG(func)
    loops = natural_loops(cfg)
    for loop in loops:
        mandatory.add(loop.header)
    mandatory &= cfg.reachable

    weights = _block_store_weights(func, cfg, count_ckpt_estimates)

    # Split any single block whose own weight exceeds the threshold: chop
    # its straight-line store runs into chunks that fit.
    oversized = [l for l in cfg.rpo if weights[l] > threshold]
    if oversized:
        for label in oversized:
            _split_oversized_block(func, label, threshold, count_ckpt_estimates)
        cfg = CFG(func)
        loops = natural_loops(cfg)
        mandatory = {l for l in mandatory if l in func.blocks}
        for loop in loops:
            mandatory.add(loop.header)
        mandatory &= cfg.reachable
        weights = _block_store_weights(func, cfg, count_ckpt_estimates)
        still = [l for l in cfg.rpo if weights[l] > threshold]
        if still:
            raise RegionFormationError(
                f"{func.name}: block {still[0]!r} cannot fit threshold "
                f"{threshold} even after splitting"
            )

    boundaries: Set[str] = set(cfg.rpo)  # every block an initial region
    _check_acyclic_regions(cfg, mandatory)

    # Greedy merging: drop optional boundaries in RPO while budgets hold.
    for label in cfg.rpo:
        if label in mandatory:
            continue
        boundaries.discard(label)
        region_weights = _max_region_weights(cfg, weights, boundaries)
        if any(w > threshold for w in region_weights.values()):
            boundaries.add(label)

    final_weights = _max_region_weights(cfg, weights, boundaries)
    if any(w > threshold for w in final_weights.values()):
        raise RegionFormationError(
            f"{func.name}: region budget violated after merging"
        )

    # Materialise boundary instructions and the region table.
    regions: List[RegionInfo] = []
    for region_id, label in enumerate(l for l in cfg.rpo if l in boundaries):
        block = func.blocks[label]
        block.instrs.insert(0, RegionBoundary(region_id))
        regions.append(
            RegionInfo(
                region_id=region_id,
                entry_block=label,
                mandatory=label in mandatory,
                max_store_weight=final_weights[label],
            )
        )
    func.meta["regions"] = regions
    func.meta["region_threshold"] = threshold
    return regions


def _split_oversized_block(
    func: Function, label: str, threshold: int, count_ckpt_estimates: bool
) -> None:
    """Split a block whose store weight exceeds the threshold into chunks.

    Chunks target half the threshold in raw store weight, leaving headroom
    for checkpoint estimates of the chunk's defs.
    """
    target = max(1, threshold // 2)
    current = label
    while True:
        instrs = func.blocks[current].instrs
        acc = 0
        split_at = None
        for i, instr in enumerate(instrs[:-1]):  # never split the terminator off
            acc += _instr_store_weight(instr, count_ckpt_estimates)
            if acc >= target and i + 1 < len(instrs) - 1:
                split_at = i + 1
                break
        if split_at is None:
            return
        new_label = func.fresh_label(f"{current}.chunk")
        tail = instrs[split_at:]
        del instrs[split_at:]
        instrs.append(Jump(new_label))
        func.add_block(BasicBlock(new_label, tail))
        current = new_label


def region_of_block(func: Function) -> Dict[str, int]:
    """Map each reachable block to the region id covering it.

    A block belongs to the region of the nearest boundary block on any path
    from the entry; by construction all paths into a non-boundary block come
    from a single region's subgraph, so the mapping is well defined.
    """
    cfg = CFG(func)
    boundary_ids: Dict[str, int] = {}
    for region in func.meta.get("regions", []):
        boundary_ids[region.entry_block] = region.region_id
    mapping: Dict[str, int] = {}
    for label in cfg.rpo:
        if label in boundary_ids:
            mapping[label] = boundary_ids[label]
        else:
            preds = [p for p in cfg.preds[label] if p in mapping]
            if preds:
                mapping[label] = mapping[preds[0]]
    return mapping
