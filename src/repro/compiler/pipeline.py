"""The Capri compiler facade: configuration ladder and full pipeline.

:class:`OptConfig` mirrors the accumulative optimisation ladder of the
paper's Figure 9:

======================  =============================================
Config                  Meaning
======================  =============================================
``OptConfig.volatile()``    no instrumentation (baseline binary)
``OptConfig.region()``      region boundaries only (not failure atomic)
``OptConfig.ckpt()``        + register-checkpointing stores
``OptConfig.unrolling()``   + speculative loop unrolling
``OptConfig.pruning()``     + optimal checkpoint pruning
``OptConfig.licm()``        + checkpoint motion out of loops (full Capri)
======================  =============================================

``CapriCompiler.compile`` clones the input module and applies the enabled
passes per function, bottom of Section 4's pipeline:
unroll -> form regions -> insert checkpoints -> prune -> licm.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.compiler.clone import clone_module
from repro.compiler.checkpoints import insert_checkpoints
from repro.compiler.licm import move_checkpoints_out_of_loops
from repro.compiler.pruning import prune_checkpoints
from repro.compiler.regions import form_regions
from repro.compiler.unrolling import speculative_unroll

#: Default region store threshold (paper Section 3.2: 256 by default).
DEFAULT_THRESHOLD = 256


@dataclass(frozen=True)
class OptConfig:
    """Compiler configuration: threshold plus the enabled pass set."""

    threshold: int = DEFAULT_THRESHOLD
    regions: bool = True
    checkpoints: bool = True
    unroll: bool = True
    prune: bool = True
    licm_opt: bool = True
    #: Upper bound on the speculative unroll factor; the effective factor
    #: is threshold-budgeted per loop (see repro.compiler.unrolling), so
    #: the store threshold — not this cap — is normally the binding limit.
    max_unroll: int = 32
    #: Small-leaf-function inlining (extension beyond the paper: removes
    #: mandatory call boundaries; see repro.compiler.inlining).
    inline: bool = False

    # -- the Figure 9 ladder ------------------------------------------------

    @staticmethod
    def volatile() -> "OptConfig":
        """Uninstrumented baseline (no regions at all)."""
        return OptConfig(
            regions=False, checkpoints=False, unroll=False, prune=False,
            licm_opt=False,
        )

    @staticmethod
    def region(threshold: int = DEFAULT_THRESHOLD) -> "OptConfig":
        return OptConfig(
            threshold=threshold, checkpoints=False, unroll=False,
            prune=False, licm_opt=False,
        )

    @staticmethod
    def ckpt(threshold: int = DEFAULT_THRESHOLD) -> "OptConfig":
        return OptConfig(
            threshold=threshold, unroll=False, prune=False, licm_opt=False
        )

    @staticmethod
    def unrolling(threshold: int = DEFAULT_THRESHOLD) -> "OptConfig":
        return OptConfig(threshold=threshold, prune=False, licm_opt=False)

    @staticmethod
    def pruning(threshold: int = DEFAULT_THRESHOLD) -> "OptConfig":
        return OptConfig(threshold=threshold, licm_opt=False)

    @staticmethod
    def licm(threshold: int = DEFAULT_THRESHOLD) -> "OptConfig":
        """All optimisations: full Capri."""
        return OptConfig(threshold=threshold)

    full = licm  # alias

    @staticmethod
    def inlined(threshold: int = DEFAULT_THRESHOLD) -> "OptConfig":
        """Full Capri plus small-function inlining (extension)."""
        return OptConfig(threshold=threshold, inline=True)

    @staticmethod
    def ladder(threshold: int = DEFAULT_THRESHOLD) -> Dict[str, "OptConfig"]:
        """Figure 9's accumulative configurations, in order."""
        return {
            "region": OptConfig.region(threshold),
            "+ckpt": OptConfig.ckpt(threshold),
            "+unrolling": OptConfig.unrolling(threshold),
            "+pruning": OptConfig.pruning(threshold),
            "+licm": OptConfig.licm(threshold),
        }

    @property
    def instrumented(self) -> bool:
        return self.regions

    def with_threshold(self, threshold: int) -> "OptConfig":
        return replace(self, threshold=threshold)


@dataclass
class CompileResult:
    """Output of :meth:`CapriCompiler.compile`."""

    module: Module
    config: OptConfig
    #: Per-function static pass statistics.
    function_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Call sites removed by the inlining extension (0 unless enabled).
    inlined_calls: int = 0

    @property
    def total(self) -> Dict[str, int]:
        """Summed statistics across all functions."""
        out: Dict[str, int] = {}
        for stats in self.function_stats.values():
            for key, value in stats.items():
                out[key] = out.get(key, 0) + value
        return out


class CapriCompiler:
    """Applies the Capri instrumentation pipeline to IR modules."""

    def __init__(self, config: Optional[OptConfig] = None) -> None:
        self.config = config or OptConfig()

    def compile(self, module: Module, validate: bool = False) -> CompileResult:
        """Clone ``module`` and apply the configured passes to every function.

        ``validate=True`` additionally runs the static whole-system-
        persistence verifier (:mod:`repro.compiler.verify_capri`) over the
        instrumented output — checkpoint coverage, region budgets, and
        recovery-block purity — raising on any violation.
        """
        from repro.deps import touch

        touch("compiler")  # usage-probe dependency recording
        cfg = self.config
        out = clone_module(module)
        result = CompileResult(module=out, config=cfg)
        if not cfg.regions:
            verify_module(out)
            return result
        if cfg.inline:
            from repro.compiler.inlining import inline_small_functions

            result.inlined_calls = inline_small_functions(out)
        for func in out.functions.values():
            stats: Dict[str, int] = {}
            if cfg.unroll:
                stats["loops_unrolled"] = speculative_unroll(
                    func, threshold=cfg.threshold, max_unroll=cfg.max_unroll
                )
            regions = form_regions(
                func,
                threshold=cfg.threshold,
                count_ckpt_estimates=cfg.checkpoints,
            )
            stats["regions"] = len(regions)
            if cfg.checkpoints:
                stats["checkpoints_inserted"] = insert_checkpoints(func)
                if cfg.prune:
                    stats["checkpoints_pruned"] = prune_checkpoints(func)
                if cfg.licm_opt:
                    stats["checkpoints_licm"] = move_checkpoints_out_of_loops(
                        func
                    )
            result.function_stats[func.name] = stats
        verify_module(out)
        if validate and cfg.checkpoints:
            from repro.compiler.verify_capri import verify_capri_module

            verify_capri_module(out, cfg.threshold)
        return result
