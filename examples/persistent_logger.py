#!/usr/bin/env python3
"""Persistent logger: I/O under whole-system persistence (Section 3.3).

The paper leaves non-recoverable operations (I/O) as an open problem and
sketches the answer Capri enables: isolate each I/O in its own region so
a crash re-issues at most the one interrupted operation.  This example
runs a record logger that stores each record to NVM and emits it to a
"disk" port, kills the power repeatedly, and shows:

* memory state recovers exactly, every time,
* the combined output stream contains every record in order,
* at most one duplicate appears per crash — the record in flight — which
  is the at-least-once contract (dedupable downstream by sequence number).

Run:  python examples/persistent_logger.py
"""

from repro.arch import SimParams
from repro.arch.crash import CrashInjector, CrashPlan, PowerFailure
from repro.arch.recovery import prepare_resumed_run, recover
from repro.arch.system import CapriSystem
from repro.compiler import CapriCompiler, OptConfig
from repro.ir import IRBuilder, verify_module
from repro.ir.module import is_ckpt_addr
from repro.isa import Machine

NUM_RECORDS = 24
DISK_PORT = 1


def build_logger():
    b = IRBuilder("persistent_logger")
    records = b.module.alloc("records", NUM_RECORDS)
    with b.function("main") as f:
        with f.for_range(NUM_RECORDS) as i:
            rec = f.add(f.mul(i, 100), 1)  # record #i -> payload 100i+1
            f.store(rec, f.add(records, f.shl(i, 3)))
            f.io_write(DISK_PORT, rec)  # leaves the persistence domain
        f.ret()
    verify_module(b.module)
    return b.module, records


def data_state(machine):
    return {a: v for a, v in machine.memory.items() if not is_ckpt_addr(a)}


def main() -> None:
    module, records = build_logger()
    capri = CapriCompiler(OptConfig.licm(64)).compile(module).module
    spawns = [("main", [])]
    params = SimParams.scaled()

    # Reference: the crash-free run.
    ref = Machine(capri)
    ref.spawn("main", [])
    ref.run()
    ref_io = [v for (_, _, v) in ref.io_log]
    ref_data = data_state(ref)

    # Crash-ridden run: power fails every ~120 events until completion.
    crash_every = 120
    output = []
    machine = Machine(capri)
    machine.spawn("main", [])
    system = CapriSystem(params, 1, 64)
    system.attach(machine)
    crashes = 0
    while True:
        injector = CrashInjector(system, CrashPlan(crash_every))
        try:
            machine.run(injector)
        except PowerFailure as pf:
            crashes += 1
            output.extend(v for (_, _, v) in machine.io_log)
            print(f"power failure #{crashes}: "
                  f"{len(machine.io_log)} records emitted this leg")
            recovered = recover(pf.state, capri)
            machine, system = prepare_resumed_run(
                recovered, capri, spawns, params=params, threshold=64
            )
            continue
        output.extend(v for (_, _, v) in machine.io_log)
        break

    print(f"\nsurvived {crashes} power failures")
    print(f"memory recovered exactly: {data_state(machine) == ref_data}")

    delivered = sorted(set(output), key=ref_io.index)
    duplicates = len(output) - len(set(output))
    print(f"records delivered: {len(set(output))}/{NUM_RECORDS} "
          f"(complete: {delivered == ref_io})")
    print(f"duplicates at crash seams: {duplicates} "
          f"(bound: one per crash = {crashes})")
    assert data_state(machine) == ref_data
    assert delivered == ref_io
    assert duplicates <= crashes
    print("\nAt-least-once delivery with exact memory recovery — the "
          "Section 3.3 sketch, working.")


if __name__ == "__main__":
    main()
