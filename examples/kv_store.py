#!/usr/bin/env python3
"""A crash-consistent key-value store with zero persistence code.

The paper's motivation (Section 1): under partial-system persistence,
only specially-written programs — in-memory databases, key-value stores
with custom durable data structures and recovery code — get crash
consistency.  Capri inverts that: here is an ordinary open-addressing
hash table written with no transactions, no pmalloc, no flushes, no
recovery code whatsoever, made whole-system persistent by compiling it
with the Capri compiler.

The demo applies a workload of puts/deletes, kills the power mid-flight
several times, recovers, and shows the final table matches an
uninterrupted run exactly — including tombstones and probe chains, the
classic prey of torn hash-table updates.

Run:  python examples/kv_store.py
"""

from repro.arch import SimParams
from repro.arch.crash import CrashInjector, CrashPlan, PowerFailure
from repro.arch.recovery import prepare_resumed_run, recover
from repro.arch.system import CapriSystem
from repro.compiler import CapriCompiler, OptConfig
from repro.ir import IRBuilder, verify_module
from repro.ir.module import is_ckpt_addr
from repro.isa import Machine

TABLE_SLOTS = 128  # power of two; each slot: [key, value]
EMPTY = 0
TOMBSTONE = -1
NUM_OPS = 220


def build_kv():
    """put/delete over linear-probing open addressing — plain code."""
    b = IRBuilder("kv_store")
    table = b.module.alloc("table", 2 * TABLE_SLOTS)
    stats = b.module.alloc("stats", 4)  # [puts, deletes, misses, probes]

    def slot_addr(f, idx):
        return f.add(table, f.shl(f.mul(idx, 2), 3))

    with b.function("kv_put", params=["key", "value"]) as f:
        h = f.mul(f.param(0), 0x9E3779B1)
        idx = f.and_(f.xor(h, f.shr(h, 16)), TABLE_SLOTS - 1)
        with f.for_range(TABLE_SLOTS) as probe:
            addr = slot_addr(f, idx)
            k = f.load(addr)
            empty = f.or_(f.cmp("seq", k, EMPTY), f.cmp("seq", k, TOMBSTONE))
            hit = f.cmp("seq", k, f.param(0))
            with f.if_then(f.or_(empty, hit)):
                f.store(f.param(0), addr)  # two plain stores: the torn-
                f.store(f.param(1), addr, offset=8)  # write hazard, solved
                f.store(f.add(f.load(stats), 1), stats)
                f.ret(1)
            f.add(idx, 1, dst=idx)
            f.and_(idx, TABLE_SLOTS - 1, dst=idx)
            f.store(f.add(f.load(stats, offset=24), 1), stats, offset=24)
        f.ret(0)  # table full

    with b.function("kv_delete", params=["key"]) as f:
        h = f.mul(f.param(0), 0x9E3779B1)
        idx = f.and_(f.xor(h, f.shr(h, 16)), TABLE_SLOTS - 1)
        with f.for_range(TABLE_SLOTS):
            addr = slot_addr(f, idx)
            k = f.load(addr)
            with f.if_then(f.cmp("seq", k, f.param(0))):
                f.store(TOMBSTONE, addr)
                f.store(0, addr, offset=8)
                f.store(f.add(f.load(stats, offset=8), 1), stats, offset=8)
                f.ret(1)
            with f.if_then(f.cmp("seq", k, EMPTY)):
                f.store(f.add(f.load(stats, offset=16), 1), stats, offset=16)
                f.ret(0)  # not present
            f.add(idx, 1, dst=idx)
            f.and_(idx, TABLE_SLOTS - 1, dst=idx)
        f.ret(0)

    with b.function("main", params=["ops"]) as f:
        rng = f.li(0xBEEF)
        with f.for_range(f.param(0)):
            f.mul(rng, 0x9E3779B1, dst=rng)
            f.xor(rng, f.shr(rng, 13), dst=rng)
            key = f.add(f.and_(rng, 63), 1)  # keys 1..64
            kind = f.and_(f.shr(rng, 20), 3)
            with f.if_else(f.cmp("seq", kind, 0)) as br:
                f.call("kv_delete", [key], returns=True)
                br.otherwise()
                value = f.and_(f.shr(rng, 8), 0xFFFF)
                f.call("kv_put", [key, value], returns=True)
        f.ret()
    verify_module(b.module)
    return b.module, table, stats


def data_state(machine):
    return {a: v for a, v in machine.memory.items() if not is_ckpt_addr(a)}


def dump_table(memory, table):
    live = {}
    for i in range(TABLE_SLOTS):
        k = memory.get(table + 16 * i, 0)
        if k not in (EMPTY, TOMBSTONE):
            live[k] = memory.get(table + 16 * i + 8, 0)
    return live


def main() -> None:
    module, table, stats = build_kv()
    capri = CapriCompiler(OptConfig.licm(256)).compile(module, validate=True).module
    spawns = [("main", [NUM_OPS])]
    params = SimParams.scaled()

    # Reference run.
    ref = Machine(capri)
    ref.spawn("main", [NUM_OPS])
    ref.run()
    ref_state = data_state(ref)
    ref_table = dump_table(ref.memory, table)
    print(f"reference run: {len(ref_table)} live keys, "
          f"{ref.memory.get(stats, 0)} puts, "
          f"{ref.memory.get(stats + 8, 0)} deletes")

    # Crash-ridden run.
    machine = Machine(capri)
    machine.spawn("main", [NUM_OPS])
    system = CapriSystem(params, 1, 256)
    system.attach(machine)
    crashes = 0
    while True:
        injector = CrashInjector(system, CrashPlan(at_event=701))
        try:
            machine.run(injector)
        except PowerFailure as pf:
            crashes += 1
            recovered = recover(pf.state, capri)
            print(f"power failure #{crashes}: rolled back "
                  f"{recovered.regions_rolled_back} region "
                  f"({recovered.undo_words} undo words), resuming")
            machine, system = prepare_resumed_run(
                recovered, capri, spawns, params=params, threshold=256
            )
            continue
        break

    final_table = dump_table(machine.memory, table)
    exact = data_state(machine) == ref_state
    print(f"\nsurvived {crashes} power failures mid-put/mid-delete")
    print(f"final table identical to crash-free run: {exact}")
    print(f"live keys: {len(final_table)} (sample: "
          f"{dict(sorted(final_table.items())[:5])})")
    assert exact
    print("\nAn ordinary hash table — no transactions, no flushes, no "
          "recovery code — is crash-consistent under Capri (Section 2.1).")


if __name__ == "__main__":
    main()
