#!/usr/bin/env python3
"""A crash-consistent key-value store with zero persistence code.

The paper's motivation (Section 1): under partial-system persistence,
only specially-written programs — in-memory databases, key-value stores
with custom durable data structures and recovery code — get crash
consistency.  Capri inverts that: an ordinary open-addressing hash table
with no transactions, no pmalloc, no flushes and no recovery code is
made whole-system persistent by compiling it with the Capri compiler.

The table itself lives in the workload registry
(:mod:`repro.workloads.kvstore`, registry name ``kv_store``) so sweeps,
fault campaigns, the persistency checker, and the multi-tenant service
front-end (``python -m repro serve``) all share this one builder; this
script is the single-machine demo: apply a workload of puts/deletes,
kill the power mid-flight several times, recover, and show the final
table matches an uninterrupted run exactly — including tombstones and
probe chains, the classic prey of torn hash-table updates.

Run:  python examples/kv_store.py
"""

from repro.arch import SimParams
from repro.arch.crash import CrashInjector, CrashPlan, PowerFailure
from repro.arch.recovery import prepare_resumed_run, recover
from repro.arch.system import CapriSystem
from repro.compiler import CapriCompiler, OptConfig
from repro.ir.module import is_ckpt_addr
from repro.isa import Machine
from repro.workloads.kvstore import build_kv_service_module, dump_table

NUM_OPS = 220


def data_state(machine):
    return {a: v for a, v in machine.memory.items() if not is_ckpt_addr(a)}


def main() -> None:
    module, layout = build_kv_service_module()
    capri = CapriCompiler(OptConfig.licm(256)).compile(module, validate=True).module
    spawns = [("main", [NUM_OPS])]
    params = SimParams.scaled()

    # Reference run.
    ref = Machine(capri)
    ref.spawn("main", [NUM_OPS])
    ref.run()
    ref_state = data_state(ref)
    ref_table = dump_table(ref.memory, layout)
    print(f"reference run: {len(ref_table)} live keys, "
          f"{ref.memory.get(layout.stats, 0)} puts, "
          f"{ref.memory.get(layout.stats + 8, 0)} deletes")

    # Crash-ridden run.
    machine = Machine(capri)
    machine.spawn("main", [NUM_OPS])
    system = CapriSystem(params, 1, 256)
    system.attach(machine)
    crashes = 0
    while True:
        injector = CrashInjector(system, CrashPlan(at_event=701))
        try:
            machine.run(injector)
        except PowerFailure as pf:
            crashes += 1
            recovered = recover(pf.state, capri)
            print(f"power failure #{crashes}: rolled back "
                  f"{recovered.regions_rolled_back} region "
                  f"({recovered.undo_words} undo words), resuming")
            machine, system = prepare_resumed_run(
                recovered, capri, spawns, params=params, threshold=256
            )
            continue
        break

    final_table = dump_table(machine.memory, layout)
    exact = data_state(machine) == ref_state
    print(f"\nsurvived {crashes} power failures mid-put/mid-delete")
    print(f"final table identical to crash-free run: {exact}")
    print(f"live keys: {len(final_table)} (sample: "
          f"{dict(sorted(final_table.items())[:5])})")
    assert exact
    print("\nAn ordinary hash table — no transactions, no flushes, no "
          "recovery code — is crash-consistent under Capri (Section 2.1).")


if __name__ == "__main__":
    main()
