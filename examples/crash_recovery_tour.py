#!/usr/bin/env python3
"""Crash-recovery tour: power-fail a workload at every point in its life.

Sweeps crash injection across an entire run of a multi-phase workload and
shows, for each crash, what the Section 5.4 recovery protocol did —
committed regions redone from redo data, the interrupted region rolled
back from undo data, registers reloaded from checkpoint storage, pruned
registers rebuilt by recovery blocks — and verifies the resumed execution
finishes with exactly the crash-free state every single time.

Run:  python examples/crash_recovery_tour.py [--step N]
"""

import argparse

from repro.arch import SimParams
from repro.arch.crash import CrashPlan, run_until_crash
from repro.arch.recovery import recover, resume_and_finish
from repro.compiler import CapriCompiler, OptConfig
from repro.ir.module import is_ckpt_addr
from repro.isa import Machine
from repro.workloads import get_workload

#: Small caches force regular-path writebacks, exercising the Figure 7
#: scenario (uncommitted data reaching NVM before the crash).
PARAMS = SimParams.scaled().with_(
    l1_size_bytes=512, l2_size_bytes=1024, dram_cache_size_bytes=1024
)


def data_state(machine):
    return {a: v for a, v in machine.memory.items() if not is_ckpt_addr(a)}


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--step", type=int, default=211,
                        help="crash every N events (prime defaults hit "
                        "varied phases)")
    parser.add_argument("--workload", default="genome")
    parser.add_argument("--threshold", type=int, default=32)
    args = parser.parse_args()

    workload = get_workload(args.workload)
    module, spawns = workload.build(scale=0.3)
    compiled = CapriCompiler(OptConfig.licm(args.threshold)).compile(module)
    capri = compiled.module

    reference = Machine(capri)
    for fn, a in spawns:
        reference.spawn(fn, a)
    reference.run()
    ref_state = data_state(reference)
    total_events = reference.total_retired  # lower bound on event count

    print(f"workload={workload.name} threshold={args.threshold} "
          f"(~{total_events} instructions)\n")
    print(f"{'crash@':>8s} {'redone':>7s} {'rolled':>7s} {'undo':>6s} "
          f"{'redo':>6s} {'rblocks':>8s} {'resumed==reference':>20s}")

    crashes = survived = 0
    at = 0
    while True:
        state = run_until_crash(
            capri, spawns, CrashPlan(at), params=PARAMS,
            threshold=args.threshold,
        )
        if state is None:
            break  # ran to completion: past the end of the program
        recovered = recover(state, capri)
        finished = resume_and_finish(recovered, capri, spawns)
        ok = data_state(finished) == ref_state
        crashes += 1
        survived += ok
        print(f"{at:8d} {recovered.regions_redone:7d} "
              f"{recovered.regions_rolled_back:7d} {recovered.undo_words:6d} "
              f"{recovered.redo_words:6d} {recovered.recovery_blocks_run:8d} "
              f"{str(ok):>20s}")
        assert ok, f"recovery mismatch at event {at}"
        at += args.step

    print(f"\n{survived}/{crashes} crash points recovered to the exact "
          f"crash-free state.")


if __name__ == "__main__":
    main()
