#!/usr/bin/env python3
"""Quickstart: make an ordinary program whole-system persistent.

Builds a small bank-transfer program through the public IR API, compiles
it with the Capri compiler, runs it on the simulated Capri architecture,
and finally *kills the power mid-run* — then recovers and resumes, showing
that the program completes with exactly the state an uninterrupted run
produces, with no persistence code in the program itself.

Run:  python examples/quickstart.py
"""

from repro.arch import SimParams, run_workload
from repro.arch.crash import CrashPlan, run_until_crash
from repro.arch.recovery import recover, resume_and_finish
from repro.compiler import CapriCompiler, OptConfig
from repro.ir import IRBuilder, verify_module
from repro.ir.module import is_ckpt_addr
from repro.isa import Machine

NUM_ACCOUNTS = 64
NUM_TRANSFERS = 300


def build_bank():
    """An ordinary program: shuffle money between accounts.

    Note what is absent: no transactions, no pmalloc, no flushes — the
    whole point of whole-system persistence (paper Section 2.1).
    """
    b = IRBuilder("bank")
    accounts = b.module.alloc(
        "accounts", NUM_ACCOUNTS, init=[1000] * NUM_ACCOUNTS
    )
    with b.function("transfer", params=["base", "src", "dst", "amount"]) as f:
        src_addr = f.add(f.param(0), f.shl(f.param(1), 3))
        dst_addr = f.add(f.param(0), f.shl(f.param(2), 3))
        f.store(f.sub(f.load(src_addr), f.param(3)), src_addr)
        f.store(f.add(f.load(dst_addr), f.param(3)), dst_addr)
        f.ret()
    with b.function("main") as f:
        rng = f.li(0xACE1)
        with f.for_range(NUM_TRANSFERS):
            f.mul(rng, 0x9E3779B1, dst=rng)
            f.xor(rng, f.shr(rng, 13), dst=rng)
            src = f.and_(rng, NUM_ACCOUNTS - 1)
            dst = f.and_(f.shr(rng, 8), NUM_ACCOUNTS - 1)
            amount = f.add(f.and_(f.shr(rng, 16), 63), 1)
            f.call("transfer", [accounts, src, dst, amount])
        f.ret()
    verify_module(b.module)
    return b.module, accounts


def data_state(machine):
    return {a: v for a, v in machine.memory.items() if not is_ckpt_addr(a)}


def main() -> None:
    module, accounts = build_bank()
    spawns = [("main", [])]

    # --- 1. compile: unchanged program in, recoverable regions out -------
    compiled = CapriCompiler(OptConfig.licm(threshold=256)).compile(module)
    capri_module = compiled.module
    print("Capri compiler:")
    for fn, stats in compiled.function_stats.items():
        print(f"  {fn:10s} {stats}")

    # --- 2. measure the cost of persistence ------------------------------
    base, _ = run_workload(module, spawns, persistence=False)
    capri, _ = run_workload(capri_module, spawns, threshold=256)
    overhead = capri.exec_cycles / base.exec_cycles - 1.0
    print(f"\nPerformance: baseline {base.exec_cycles:.0f} cycles, "
          f"Capri {capri.exec_cycles:.0f} cycles ({overhead:+.1%} overhead)")
    print(f"  proxy entries {capri.proxy_entries}, NVM writes "
          f"{capri.nvm_writes_total}, stale reads {capri.stale_reads}")
    print("  (a call per three stores is Capri's worst case: every call "
          "is a mandatory region boundary — cf. deepsjeng in Figure 8)")

    # --- 3. the reference: what should the final state be? ---------------
    reference = Machine(capri_module)
    reference.spawn("main", [])
    reference.run()
    ref_state = data_state(reference)
    total = sum(ref_state.get(accounts + i * 8, 0) for i in range(NUM_ACCOUNTS))
    print(f"\nCrash-free run: total balance {total} "
          f"(conserved: {total == 1000 * NUM_ACCOUNTS})")

    # --- 4. kill the power mid-run, recover, resume ----------------------
    crash_at = 2000  # events into the run: mid-transfer chaos
    state = run_until_crash(
        capri_module, spawns, CrashPlan(crash_at), threshold=256
    )
    assert state is not None, "program finished before the crash point"
    recovered = recover(state, capri_module)
    print(f"\nPower failure at event {crash_at}:")
    print(f"  committed regions redone : {recovered.regions_redone}")
    print(f"  interrupted region undone: {recovered.regions_rolled_back} "
          f"({recovered.undo_words} undo words)")
    print(f"  recovery blocks executed : {recovered.recovery_blocks_run}")

    finished = resume_and_finish(recovered, capri_module, spawns)
    match = data_state(finished) == ref_state
    print(f"\nResumed run matches crash-free run exactly: {match}")
    assert match


if __name__ == "__main__":
    main()
