#!/usr/bin/env python3
"""Stale-read demo: the Figure 6 persist-order races, live.

Capri lets the *regular path* (cache writebacks) and the *proxy path*
(phase-2 redo drains) both update NVM; their arrivals can interleave in
any order.  This script replays the paper's orderings at the persistence
engine and then runs a whole workload with a tiny cache hierarchy, with
stale-read prevention on and off, showing the redo valid-bit machinery is
what keeps NVM reads consistent.

Run:  python examples/stale_read_demo.py
"""

from repro.arch import SimParams
from repro.arch.nvm import NVMain
from repro.arch.persistence import PersistenceEngine
from repro.arch.system import run_workload
from repro.compiler import CapriCompiler, OptConfig
from repro.workloads import get_workload

A = 0x1000  # the contended address, as in Figure 6


def engine(prevention: bool):
    params = SimParams.scaled().with_(stale_read_prevention=prevention)
    nvm = NVMain(params)
    return PersistenceEngine(params, nvm, num_cores=1, threshold=16), nvm


def figure6(order: str, prevention: bool) -> str:
    """Replay one arrival order; returns what a full-miss load of A sees.

    The program executed: region 1 stores A=10, region 2 stores A=20.
    The architecturally-correct value is therefore 20.
    """
    eng, nvm = engine(prevention)
    eng.on_store(0, 0.0, A, 10, 0)  # (1) region 1: A=10
    eng.on_boundary(0, 0.0, 1, None)
    eng.on_store(0, 0.0, A, 20, 10)  # (2) region 2: A=20, still in phase 1
    if order == "proxy-first":  # (1)(2)(3) — the common case
        eng.advance_all(1e9)  # region 1 drains A=10
        eng.on_nvm_writeback(1e9, A - A % 64, {A: 20})
    elif order == "writeback-first":  # (3)(1) — the stale-read hazard
        # The merged dirty line (A=20) is evicted before region 1's
        # delayed phase 2 runs.
        eng.on_nvm_writeback(0.0, A - A % 64, {A: 20})
        eng.advance_all(1e9)  # region 1's redo A=10 is the last arrival
    value = eng.check_nvm_read(1e9, A, architectural=20)
    stale = " STALE!" if eng.stale_reads else ""
    return f"NVM reads A={value}{stale}"


def main() -> None:
    print("Figure 6 replay (program truth: A=20)\n")
    for order in ["proxy-first", "writeback-first"]:
        for prevention in [True, False]:
            label = f"order={order:16s} prevention={str(prevention):5s}"
            print(f"  {label} -> {figure6(order, prevention)}")

    print("\nWhole-workload check (tiny caches force constant writebacks):")
    # genome's hash scatter keeps re-storing the same lines, so evictions
    # race still-buffered proxy entries for matching addresses.
    workload = get_workload("genome")
    module, spawns = workload.build(scale=0.8)
    capri = CapriCompiler(OptConfig.licm(64)).compile(module).module
    # Tiny caches force evictions; a throttled NVM write port keeps proxy
    # entries buffered long enough for writebacks to race them.
    tiny = SimParams.scaled().with_(
        l1_size_bytes=512,
        l2_size_bytes=1024,
        dram_cache_size_bytes=1024,
        nvm_write_parallelism=4,
    )
    for prevention in [True, False]:
        metrics, _ = run_workload(
            capri, spawns,
            params=tiny.with_(stale_read_prevention=prevention),
            threshold=64,
        )
        print(f"  prevention={str(prevention):5s} "
              f"writebacks={metrics.nvm_writes_writeback:5d} "
              f"redo_skipped={metrics.nvm_writes_skipped:5d} "
              f"invalidations={metrics.invalidations:5d} "
              f"stale_reads={metrics.stale_reads}")
    print("\nWith prevention, delayed redo copies are invalidated and NVM "
          "always holds the latest committed value (Section 5.3.2).")


if __name__ == "__main__":
    main()
