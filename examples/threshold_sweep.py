#!/usr/bin/env python3
"""Threshold sweep: the compiler/architecture co-design lever, end to end.

The store threshold is Capri's central co-design parameter: the compiler
bounds every region's store count by it, and the architecture sizes the
per-core back-end proxy buffer from it (Section 5.2.2).  This script
sweeps the threshold for one benchmark and reports, at each point, the
performance AND hardware-cost consequences — the trade-off behind the
paper's Figure 8 and its choice of 256 as the default.

Run:  python examples/threshold_sweep.py [--workload NAME]
"""

import argparse

from repro.arch.params import SimParams
from repro.compiler import OptConfig
from repro.eval.harness import EvalHarness
from repro.workloads import get_workload, workload_names

#: 136 bytes per back-end entry: 8B address + two 64B lines (Figure 5).
ENTRY_BYTES = 136


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--workload", default="508.namd_r", choices=workload_names()
    )
    parser.add_argument("--scale", type=float, default=0.5)
    args = parser.parse_args()

    harness = EvalHarness(params=SimParams.scaled(), scale=args.scale)
    name = args.workload
    print(f"benchmark: {name} (baseline "
          f"{harness.baseline_cycles(name):.0f} cycles)\n")
    print(f"{'threshold':>9s} {'norm.cycles':>12s} {'overhead':>9s} "
          f"{'ckpts':>7s} {'boundaries':>11s} {'regions/s len':>14s} "
          f"{'BE sram/core':>13s}")

    for threshold in [32, 64, 128, 256, 512, 1024]:
        result = harness.run(
            name, OptConfig.licm(threshold), f"t{threshold}",
            collect_region_stats=True,
        )
        m = result.metrics
        rs = result.region_stats
        sram_kb = threshold * ENTRY_BYTES / 1024
        print(f"{threshold:9d} {result.normalized_cycles:12.3f} "
              f"{result.overhead_pct:8.1f}% {m.ckpt_stores:7d} "
              f"{m.boundaries:11d} {rs.avg_instructions:14.1f} "
              f"{sram_kb:10.1f}KB")

    print(
        "\nLarger thresholds mean longer regions, fewer checkpoints and "
        "boundaries\n(lower overhead) but a larger battery-backed back-end "
        "buffer per core —\nthe paper picks 256 (~34KB/core) as the sweet "
        "spot (Sections 6.1-6.2)."
    )


if __name__ == "__main__":
    main()
