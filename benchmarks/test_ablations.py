"""Ablation benchmarks — the design choices DESIGN.md calls out.

Each benchmark runs one sweep from :mod:`repro.eval.ablations` at reduced
scale and asserts the design story:

* the paper's 32-entry front-end proxy is sized past its own cliff,
* the dedicated proxy path must keep up with store rate (and does at the
  Table 1 parameters),
* phase-2 NVM write bandwidth is the binding backgroud resource,
* stale-read prevention is performance-neutral and strictly saves NVM
  writes,
* the back-end-equals-threshold contract is load-bearing (undersizing it
  is detected as a hard error),
* the inlining extension pays off exactly where calls dominate.
"""

import pytest

from repro.eval.ablations import (
    STREAM_PROBE,
    frontend_size_sweep,
    inlining_ablation,
    nvm_bandwidth_sweep,
    prevention_cost,
    proxy_bandwidth_sweep,
)

SCALE = 0.5


def test_ablation_frontend_size(benchmark):
    cells = benchmark.pedantic(
        lambda: frontend_size_sweep(
            sizes=(1, 4, 32), benchmarks=(STREAM_PROBE,), scale=SCALE
        ),
        rounds=1,
        iterations=1,
    )
    series = cells[STREAM_PROBE]
    # Starving the front end hurts; the paper's 32 sits on the flat part.
    assert series["1"] > series["4"] >= series["32"] * 0.999
    assert series["1"] > 1.1


def test_ablation_proxy_bandwidth(benchmark):
    cells = benchmark.pedantic(
        lambda: proxy_bandwidth_sweep(
            intervals_ns=(1.0, 32.0), benchmarks=(STREAM_PROBE,), scale=SCALE
        ),
        rounds=1,
        iterations=1,
    )
    series = cells[STREAM_PROBE]
    # A starved path throttles phase 1 hard; the Table 1 path does not.
    assert series["32.0ns"] > series["1.0ns"] * 1.5
    assert series["1.0ns"] < 1.1


def test_ablation_nvm_bandwidth(benchmark):
    cells = benchmark.pedantic(
        lambda: nvm_bandwidth_sweep(
            parallelism=(16, 256), benchmarks=(STREAM_PROBE,), scale=SCALE
        ),
        rounds=1,
        iterations=1,
    )
    series = cells[STREAM_PROBE]
    # Phase 2 is the background bottleneck: throttle it and the whole
    # pipeline backs up into the core.
    assert series["x16"] > series["x256"]


def test_ablation_prevention_cost(benchmark):
    cells = benchmark.pedantic(
        lambda: prevention_cost(benchmarks=("genome",), scale=SCALE),
        rounds=1,
        iterations=1,
    )
    row = cells["genome"]
    # Never slower — skipped redo copies *save* NVM bandwidth, exactly the
    # paper's Section 5.3.2 argument ("saving NVM bandwidth"); under a
    # throttled write port that saving is visible as a speedup.
    assert row["cycles_on"] <= row["cycles_off"] * 1.01
    # ...never lets a stale value be read...
    assert row["stale_on"] == 0
    # ...and skips invalidated redo copies.
    assert row["skipped_on"] >= row["skipped_off"]


def test_ablation_backend_contract():
    """Undersizing the back-end proxy below the compiler threshold breaks
    the Section 5.2.2 contract — the architecture detects the overflow
    instead of silently losing atomicity."""
    from repro.arch.params import SimParams
    from repro.arch.proxy import CoreProxyPipeline, ProxyOverflowError
    from repro.arch.nvm import NVMain

    params = SimParams.scaled().with_(backend_entries=8, frontend_entries=4)
    pipe = CoreProxyPipeline(0, params, NVMain(params), threshold=64)
    with pytest.raises(ProxyOverflowError):
        for i in range(64):
            pipe.record_store(0.0, 0x1000 + i * 8, i, 0)


def test_ablation_inlining(benchmark):
    cells = benchmark.pedantic(
        lambda: inlining_ablation(
            benchmarks=("oskernel", "genome"), scale=SCALE
        ),
        rounds=1,
        iterations=1,
    )
    # Call-dense OS-style code improves; loop code is unaffected.
    assert cells["oskernel"]["+inlining"] < cells["oskernel"]["full"]
    assert cells["genome"]["+inlining"] == pytest.approx(
        cells["genome"]["full"], rel=0.02
    )
