"""Figure 9 — normalised cycles under the accumulative optimisation ladder.

Checks the paper's qualitative result: naive checkpointing (+ckpt) is the
most expensive configuration; speculative unrolling recovers a large part
of it; the fully optimised compiler (+licm) lands lowest.
"""

import pytest

from repro.compiler import OptConfig

from benchmarks.conftest import REPRESENTATIVES


@pytest.mark.parametrize("name", REPRESENTATIVES)
def test_fig9_opt_ladder(benchmark, harness, name):
    ladder = OptConfig.ladder(256)

    def run_ladder():
        return {
            label: harness.run(name, config, label).normalized_cycles
            for label, config in ladder.items()
        }

    series = benchmark.pedantic(run_ladder, rounds=1, iterations=1)
    # +ckpt (checkpoints without any optimisation) is the worst case.
    assert series["+ckpt"] == max(series.values()), series
    # Speculative unrolling recovers a substantial part of the ckpt cost.
    ckpt_over = series["+ckpt"] - 1.0
    unroll_over = series["+unrolling"] - 1.0
    assert unroll_over < ckpt_over, series
    # The fully optimised compiler is the cheapest failure-atomic config.
    failure_atomic = {k: v for k, v in series.items() if k != "region"}
    assert series["+licm"] == min(failure_atomic.values()), series
    # Region-only instrumentation (not failure atomic) is cheap.
    assert series["region"] - 1.0 < ckpt_over, series
