"""Recovery-latency benchmark (extension over the paper's Section 5.4).

Asserts the design's key recovery property: the work a recovery performs
is bounded by the proxy-buffer capacity (threshold + front-end entries),
*independent of how long the program ran* — microsecond-scale restart
under Table 1 latencies.
"""

import pytest

from repro.eval.recovery_analysis import analyze_recovery


@pytest.mark.parametrize("threshold", [32, 256])
def test_recovery_work_bounded_by_buffer_capacity(benchmark, threshold):
    sweep = benchmark.pedantic(
        lambda: analyze_recovery(
            "genome", threshold=threshold, scale=0.4
        ),
        rounds=1,
        iterations=1,
    )
    assert sweep.costs, "no crash points hit the run"
    capacity = threshold + 1 + 32  # back-end (+boundary slot) + front-end
    assert sweep.max_entries <= capacity
    # Microsecond-scale recovery under Table 1 device latencies.
    assert sweep.max_ns < 1_000_000


def test_recovery_cost_independent_of_run_length():
    """Same threshold, 4x the work: recovery cost bound doesn't grow."""
    short = analyze_recovery("genome", threshold=64, scale=0.25)
    long_ = analyze_recovery("genome", threshold=64, scale=1.0)
    assert short.costs and long_.costs
    capacity = 64 + 1 + 32
    assert long_.max_entries <= capacity
    # The long run's max recovery cost is the same order as the short's.
    assert long_.max_ns < short.max_ns * 10 + 1000
