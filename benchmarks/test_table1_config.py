"""Table 1 — simulator configuration.

Benchmarks full-system construction under the Table 1 parameters and
asserts the configuration matches the paper's rows (the table itself is
asserted in detail by tests/arch/test_params.py).
"""

from repro.arch.params import SimParams
from repro.arch.system import CapriSystem


def build_system() -> CapriSystem:
    return CapriSystem(SimParams.paper(), num_cores=8, threshold=256)


def test_table1_system_construction(benchmark):
    system = benchmark(build_system)
    p = system.params
    # Table 1 rows.
    assert p.clock_ghz == 2.0
    assert p.l1_size_bytes == 32 * 1024 and p.l1_assoc == 8
    assert p.l2_size_bytes == 16 * 1024**2 and p.l2_assoc == 16
    assert p.dram_cache_size_bytes == 8 * 1024**3
    assert p.nvm_read_ns == 150.0 and p.nvm_write_ns == 300.0
    assert p.proxy_path_ns == 20.0
    assert p.wpq_entries == 16
    assert p.frontend_entries == 32
    # Co-design contract: back-end proxy sized by the compiler threshold.
    assert system.persist is not None
    assert system.persist.pipelines[0].be_cap == p.backend_capacity(256)
    assert len(system.persist.pipelines) == 8
