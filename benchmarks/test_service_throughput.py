"""Service benchmarks: request throughput and tail latency under crashes.

Not a paper figure — this measures the reproduction's own multi-tenant
front-end (:mod:`repro.service`), so regressions in the request path,
the recovery path, or the snapshot path show up in CI.  Three shapes:

* clean single-tenant serving (the request-path floor),
* a crash-injected fleet (the p99 story: recoveries ride in the tail),
* tenant recovery in isolation (boot-from-snapshot latency).

Each benchmark also asserts the durability contract the loadgen
enforces: zero acked-write losses, zero silently dropped requests.
"""

import asyncio

import pytest

from repro.service.backends import MemoryBackend
from repro.service.loadgen import LoadgenConfig, run_loadgen
from repro.service.tenant import Request, Tenant, TenantConfig


def _campaign(config):
    return asyncio.run(run_loadgen(config))


def test_clean_serving_throughput(benchmark):
    """One tenant, one client, no crashes: the request-path floor."""
    report = benchmark.pedantic(
        lambda: _campaign(LoadgenConfig(
            tenants=1, clients_per_tenant=1, requests=150, crashes=0,
            seed=0, snapshot_every=0,
        )),
        rounds=3, iterations=1,
    )
    assert report.ok
    assert report.stats["acked"] >= 150
    benchmark.extra_info["rps"] = report.to_dict()["throughput_rps"]
    benchmark.extra_info["p50_ms"] = report.stats["latency"]["p50_ms"]


def test_fleet_under_crashes(benchmark):
    """Eight tenants, injected power failures: p99 absorbs recovery."""
    report = benchmark.pedantic(
        lambda: _campaign(LoadgenConfig(
            tenants=8, clients_per_tenant=2, requests=320, crashes=6,
            seed=2, snapshot_every=4,
        )),
        rounds=2, iterations=1,
    )
    assert report.ok, report.acked_losses
    assert report.silent_drops == 0
    assert report.stats["crashes"] > 0
    assert report.stats["recoveries"] == report.stats["crashes"]
    stats = report.stats
    benchmark.extra_info["p50_ms"] = stats["latency"]["p50_ms"]
    benchmark.extra_info["p99_ms"] = stats["latency"]["p99_ms"]
    benchmark.extra_info["crashes"] = stats["crashes"]
    benchmark.extra_info["recovery_p50_ms"] = (
        stats["recovery_latency"]["p50_ms"]
    )


def test_snapshot_per_request_overhead(benchmark):
    """snapshot_every=1 (a backend write per ack) vs the floor — the
    cost of continuous durability, not allowed to explode."""
    report = benchmark.pedantic(
        lambda: _campaign(LoadgenConfig(
            tenants=2, clients_per_tenant=1, requests=100, crashes=0,
            seed=0, snapshot_every=1,
        )),
        rounds=2, iterations=1,
    )
    assert report.ok
    assert report.stats["snapshots"] >= report.stats["acked"]
    benchmark.extra_info["p50_ms"] = report.stats["latency"]["p50_ms"]


def test_tenant_recovery_latency(benchmark):
    """Boot-from-snapshot through the stock recovery protocol."""
    backend = MemoryBackend()
    seed = Tenant("bench", backend, config=TenantConfig(snapshot_every=0))
    seed.boot()
    for key in range(1, 33):
        seed.apply(Request("put", key=key, value=key * 3))
    seed.save_snapshot()

    def recover_once():
        tenant = Tenant("bench", backend,
                        config=TenantConfig(snapshot_every=0))
        assert tenant.boot() is True
        return tenant

    tenant = benchmark(recover_once)
    assert len(tenant.table()) == 32
