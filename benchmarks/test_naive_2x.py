"""Section 1.4's naive comparison — "a naive approach may slow down the
benchmark up to 2x, [but] our novel architecture and compiler interaction
achieves very low performance overheads."

The naive design: synchronous persistence (the core stalls at every
region boundary until the region is durable) with unoptimised checkpoint
insertion.  Capri: asynchronous two-phase atomic stores with the full
compiler pipeline.
"""

import pytest

from repro.arch.params import PersistMode, SimParams
from repro.compiler import OptConfig
from repro.eval.harness import EvalHarness

from benchmarks.conftest import BENCH_SCALE, REPRESENTATIVES


@pytest.fixture(scope="module")
def sync_harness():
    return EvalHarness(
        params=SimParams.scaled().with_(persist_mode=PersistMode.SYNC),
        scale=BENCH_SCALE,
    )


@pytest.mark.parametrize("name", ["519.lbm_r", "508.namd_r", "radix"])
def test_naive_sync_vs_capri(benchmark, harness, sync_harness, name):
    def run_pair():
        capri = harness.run(name, OptConfig.licm(256), "capri")
        naive = sync_harness.run(name, OptConfig.ckpt(256), "naive")
        return capri.normalized_cycles, naive.normalized_cycles

    capri, naive = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    # Capri is strictly cheaper than the naive synchronous design.
    assert capri < naive, (capri, naive)
    # The naive design shows a substantial slowdown; Capri stays light.
    assert naive > 1.10, f"naive suspiciously cheap: {naive}"
    assert capri < 1.25, f"capri suspiciously expensive: {capri}"
