"""Figure 10 — average dynamic instructions per region.

Checks the paper's observations: speculative unrolling grows region
lengths dramatically (the namd/ssca2/volrend speedups of Section 6.3);
pruning and LICM shrink them slightly (they remove checkpoint stores);
even at threshold 256 regions stay far below the threshold-implied bound
because loops and calls limit the formation (Section 6.3's closing
remark).
"""

import pytest

from repro.compiler import OptConfig

from benchmarks.conftest import REPRESENTATIVES


@pytest.mark.parametrize("name", REPRESENTATIVES)
def test_fig10_region_instructions(benchmark, harness, name):
    ladder = OptConfig.ladder(256)

    def run_ladder():
        out = {}
        for label, config in ladder.items():
            result = harness.run(name, config, label, collect_region_stats=True)
            out[label] = result.region_stats.avg_instructions
        return out

    series = benchmark.pedantic(run_ladder, rounds=1, iterations=1)
    # Unrolling lengthens regions substantially (paper: the key effect).
    assert series["+unrolling"] > 2 * series["+ckpt"], series
    # Checkpoint removal (pruning/LICM) shrinks regions, never grows them.
    assert series["+licm"] <= series["+unrolling"] * 1.02, series
    # Region lengths are positive and sane.
    assert all(v > 0 for v in series.values()), series
