"""Figure 8 — normalised execution cycles vs region store threshold.

Regenerates the threshold series for representative benchmarks and checks
the paper's shape: overhead falls monotonically (within tolerance) as the
threshold grows, with the largest drop between the smallest thresholds
("increasing the threshold to 64 halves the slowdown", Section 6.2), and
saturates by 256-1024.
"""

import pytest

from repro.compiler import OptConfig
from repro.eval.figures import FIG8_THRESHOLDS

from benchmarks.conftest import REPRESENTATIVES

SHORT_SERIES = [32, 64, 256, 1024]


@pytest.mark.parametrize("name", REPRESENTATIVES)
def test_fig8_threshold_series(benchmark, harness, name):
    def run_series():
        return {
            t: harness.run(name, OptConfig.licm(t), f"t{t}").normalized_cycles
            for t in SHORT_SERIES
        }

    series = benchmark.pedantic(run_series, rounds=1, iterations=1)
    # Paper shape: monotone non-increasing overhead with threshold.
    values = [series[t] for t in SHORT_SERIES]
    for smaller, larger in zip(values, values[1:]):
        assert larger <= smaller * 1.02, f"{name}: overhead grew with threshold {series}"
    # Everything is an overhead (>= baseline) and reasonable (< 2x).
    assert all(1.0 <= v < 2.0 for v in values), series
    # The small-threshold penalty is visible for short-loop benchmarks.
    assert series[32] > series[1024], f"{name}: no threshold sensitivity"


def test_fig8_full_threshold_list_matches_paper():
    # The series we sweep covers the paper's plotted thresholds
    # (128..1024) plus the 32/64 points discussed in the text.
    assert set(FIG8_THRESHOLDS) >= {128, 256, 512, 1024}
    assert {32, 64} <= set(FIG8_THRESHOLDS)
