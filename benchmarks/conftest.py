"""Shared fixtures for the figure-regeneration benchmarks.

Benchmarks run the same harness as ``python -m repro.eval.figures`` at a
reduced workload scale so the whole suite finishes in minutes.  Every
benchmark also *asserts the paper's qualitative shape* (who wins, which
direction the trend goes), so a regression in the reproduction fails the
bench run rather than silently producing different tables.
"""

from __future__ import annotations

import pytest

from repro.arch.params import SimParams
from repro.eval.harness import EvalHarness

#: Workload scale for benchmark runs (full tables use 1.0 via the CLI).
BENCH_SCALE = 0.4

#: One representative per suite keeps per-figure benches fast while still
#: spanning single-threaded, sequential-STAMP and multi-threaded shapes.
REPRESENTATIVES = ["508.namd_r", "ssca2", "volrend"]


@pytest.fixture(scope="session", autouse=True)
def _isolated_sweep_cache(tmp_path_factory):
    """Keep figure sweeps (which memoise on disk) out of results/."""
    import os

    from repro.sweep.cache import CACHE_DIR_ENV

    previous = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(tmp_path_factory.mktemp("sweep-cache"))
    yield
    if previous is None:
        os.environ.pop(CACHE_DIR_ENV, None)
    else:
        os.environ[CACHE_DIR_ENV] = previous


@pytest.fixture(scope="session")
def harness() -> EvalHarness:
    """Session-wide harness: volatile baselines are computed once."""
    return EvalHarness(params=SimParams.scaled(), scale=BENCH_SCALE)
