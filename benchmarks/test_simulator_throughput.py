"""Simulator-throughput benchmarks: events/second of the hot loops.

Not a paper figure — this measures the reproduction's own engineering,
so regressions to the interpreter or the persistence pipeline show up in
CI.  The functional machine and the full Capri system are measured
separately: their ratio is the cost of the architecture model.
"""

import pytest

from repro.arch.params import SimParams
from repro.arch.system import CapriSystem
from repro.compiler import CapriCompiler, OptConfig
from repro.isa import Machine
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def compiled_workload():
    module, spawns = get_workload("519.lbm_r").build(scale=1.0)
    capri = CapriCompiler(OptConfig.licm(256)).compile(module).module
    return module, capri, spawns


def test_functional_machine_throughput(benchmark, compiled_workload):
    module, _, spawns = compiled_workload

    def run():
        machine = Machine(module)
        for fn, args in spawns:
            machine.spawn(fn, args)
        return machine.run()

    retired = benchmark(run)
    assert retired > 5_000
    # Record instructions/second for the report.
    benchmark.extra_info["instructions"] = retired


def test_full_system_throughput(benchmark, compiled_workload):
    _, capri, spawns = compiled_workload

    def run():
        machine = Machine(capri)
        for fn, args in spawns:
            machine.spawn(fn, args)
        system = CapriSystem(SimParams.scaled(), len(spawns), 256)
        system.attach(machine)
        retired = machine.run(system)
        system.finish()
        return retired

    retired = benchmark(run)
    assert retired > 5_000
    benchmark.extra_info["instructions"] = retired


def test_compiler_throughput(benchmark, compiled_workload):
    module, _, _ = compiled_workload
    compiler = CapriCompiler(OptConfig.licm(256))
    result = benchmark(lambda: compiler.compile(module))
    assert result.function_stats
