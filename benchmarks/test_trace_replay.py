"""Trace capture/replay benchmarks: the engineering wins of repro.trace.

Three numbers matter and each is asserted, not just recorded:

* **capture overhead** — recording the columnar trace must stay within a
  small factor of the bare functional run (it rides the same interpreter
  loop, adding only column appends);
* **replay vs interpreted events/s** — a crash-free replay must not be
  slower than re-interpreting (it skips instruction decode entirely);
* **campaign speedup** — an exhaustive single-crash campaign in replay
  mode must beat the interpreted campaign by a wide margin (the
  single-pass cursor turns O(events^2) arch work into O(events)).
"""

import time

import pytest

from repro.arch.system import run_workload
from repro.compiler import CapriCompiler, OptConfig
from repro.fault.campaign import CampaignConfig, run_workload_campaign
from repro.isa import Machine
from repro.trace.record import capture_trace
from repro.trace.replay import replay_metrics
from repro.workloads import get_workload

#: Campaigns re-run the system once per crash point; keep the trace a
#: few thousand events so the interpreted side stays in benchmark range.
CAMPAIGN_SCALE = 0.15


@pytest.fixture(scope="module")
def compiled_workload():
    module, spawns = get_workload("genome").build(scale=0.4)
    capri = CapriCompiler(OptConfig.licm(256)).compile(module).module
    return capri, spawns


@pytest.fixture(scope="module")
def trace(compiled_workload):
    capri, spawns = compiled_workload
    return capture_trace(capri, spawns, quantum=32)


def test_capture_overhead(benchmark, compiled_workload):
    """Recording must stay within ~4x of the bare functional run."""
    capri, spawns = compiled_workload

    def functional():
        machine = Machine(capri)
        for fn, args in spawns:
            machine.spawn(fn, args)
        return machine.run()

    start = time.perf_counter()
    functional()
    t_bare = time.perf_counter() - start

    captured = benchmark(lambda: capture_trace(capri, spawns, quantum=32))
    t_capture = benchmark.stats["mean"]
    benchmark.extra_info["events"] = len(captured)
    benchmark.extra_info["bare_functional_s"] = round(t_bare, 4)
    benchmark.extra_info["overhead_x"] = round(t_capture / max(t_bare, 1e-9), 2)
    assert t_capture < 4.0 * t_bare + 0.05


def test_replay_not_slower_than_interpreted(benchmark, compiled_workload, trace):
    """Crash-free replay events/s >= interpreted full-system events/s."""
    capri, spawns = compiled_workload

    start = time.perf_counter()
    run_workload(capri, spawns, threshold=256, quantum=32)
    t_interp = time.perf_counter() - start

    benchmark(lambda: replay_metrics(trace, threshold=256))
    t_replay = benchmark.stats["mean"]
    events = len(trace)
    benchmark.extra_info["events"] = events
    benchmark.extra_info["interpreted_events_per_s"] = int(
        events / max(t_interp, 1e-9)
    )
    benchmark.extra_info["replay_events_per_s"] = int(
        events / max(t_replay, 1e-9)
    )
    # Generous slack: both paths drive the same arch models; replay only
    # removes interpretation, it must never add systematic cost.
    assert t_replay < 1.5 * t_interp + 0.05


def test_exhaustive_campaign_speedup(benchmark):
    """Replay-mode exhaustive campaign: >=3x here at benchmark scale
    (measured 7-13x at documentation scale), identical verdicts."""

    def campaign(replay):
        config = CampaignConfig(threshold=32, minimize=False, replay=replay)
        return run_workload_campaign(
            "genome", config, scale=CAMPAIGN_SCALE, cache=None
        )

    start = time.perf_counter()
    interpreted = campaign(replay=False)
    t_interp = time.perf_counter() - start

    replayed = benchmark(lambda: campaign(replay=True))
    t_replay = benchmark.stats["mean"]

    def verdicts(result):
        return [(o.event_index, o.status) for o in result.outcomes]

    assert verdicts(interpreted) == verdicts(replayed)
    speedup = t_interp / max(t_replay, 1e-9)
    benchmark.extra_info["crash_points"] = len(interpreted.outcomes)
    benchmark.extra_info["interpreted_s"] = round(t_interp, 3)
    benchmark.extra_info["speedup_x"] = round(speedup, 2)
    assert speedup > 3.0
