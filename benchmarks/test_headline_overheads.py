"""The headline result — per-suite overheads at the default threshold.

Paper (abstract / Section 1.4): Capri achieves whole-system persistence
at 0% (SPEC CPU2017), 12.4% (STAMP) and 9.1% (Splash-3) overhead in
geometric mean, 5.1% overall, at the default threshold of 256.

Our substrate is a cost-model simulator over synthetic stand-ins (declared
band repro=3), so we assert the *band*: every suite lands in low single
digits to low teens, and the overall gmean is single-digit — same story,
not the same decimals.  EXPERIMENTS.md records paper-vs-measured values.
"""

import pytest

from repro.compiler import OptConfig
from repro.eval.report import geomean
from repro.workloads import SUITES

PAPER = {"cpu2017": 0.0, "stamp": 12.4, "splash3": 9.1, "overall": 5.1}


def test_headline_suite_overheads(benchmark, harness):
    def run_all():
        out = {}
        all_norms = []
        for suite in ["cpu2017", "stamp", "splash3"]:
            norms = [
                harness.run(name, OptConfig.licm(256), "capri").normalized_cycles
                for name in SUITES[suite]
            ]
            out[suite] = (geomean(norms) - 1.0) * 100.0
            all_norms.extend(norms)
        out["overall"] = (geomean(all_norms) - 1.0) * 100.0
        return out

    overheads = benchmark.pedantic(run_all, rounds=1, iterations=1)
    # Headline band: lightweight WSP — single digits overall.
    assert 0.0 <= overheads["overall"] < 10.0, overheads
    # Every suite is within [0%, 20%): "failure atomicity on the cheap".
    for suite, pct in overheads.items():
        assert 0.0 <= pct < 20.0, (suite, overheads)
    # SPEC CPU2017 is the cheapest or near-cheapest suite in the paper
    # (0%); allow a small margin over the others.
    assert overheads["cpu2017"] < max(overheads["stamp"], overheads["splash3"]) + 5.0
