"""Figure 11 — average dynamic stores (incl. checkpoints) per region.

Checks: checkpoint insertion raises the stores-per-region count; the
optimisation ladder brings it back down; and the average always sits well
below the threshold — the paper's point that program structure (loops,
calls) keeps regions smaller than the budget allows (Section 6.3).
"""

import pytest

from repro.compiler import OptConfig

from benchmarks.conftest import REPRESENTATIVES

THRESHOLD = 256


@pytest.mark.parametrize("name", REPRESENTATIVES)
def test_fig11_region_stores(benchmark, harness, name):
    ladder = OptConfig.ladder(THRESHOLD)

    def run_ladder():
        out = {}
        for label, config in ladder.items():
            result = harness.run(name, config, label, collect_region_stats=True)
            out[label] = result.region_stats.avg_stores
        return out

    series = benchmark.pedantic(run_ladder, rounds=1, iterations=1)
    # Checkpoints add store traffic on top of bare region formation.
    assert series["+ckpt"] > series["region"], series
    # The full optimisation set reduces stores per region vs naive +ckpt
    # relative to region size (LICM/pruning remove checkpoint stores).
    assert series["+licm"] < series["+unrolling"] * 1.02, series
    # Averages stay below the threshold (the hard proxy-sizing bound).
    assert all(v <= THRESHOLD for v in series.values()), series
